(* The unified observability layer: the metrics registry, the span
   tracer, and — the load-bearing property — that instrumenting the stack
   changed nothing: traced and untraced runs put identical bytes on the
   wire and charge identical simulated cycles, the disabled path
   allocates nothing, and every bespoke ledger in the stack agrees
   exactly with its registry mirror after a soak. *)

open Ilp_memsim
module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace
module Engine = Ilp_core.Engine
module Socket = Ilp_tcp.Socket
module Link = Ilp_netsim.Link
module Soak = Ilp_app.Soak
module Rpc_server = Ilp_rpc.Server

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_and_gauge () =
  let r = M.create () in
  let c = M.counter r "c" in
  M.inc c 1;
  M.inc c 41;
  check "counter accumulates" 42 (M.counter_value c);
  checkb "find-or-create returns the same counter" true (M.counter r "c" == c);
  let g = M.gauge r "g" in
  M.set g 7;
  M.add_gauge g (-3);
  check "gauge set+add" 4 (M.gauge_value g)

let test_kind_mismatch () =
  let r = M.create () in
  ignore (M.counter r "x");
  (match M.gauge r "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match M.histogram r "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_histogram_buckets () =
  check "v <= 0 lands in bucket 0" 0 (M.bucket_of 0);
  check "negative lands in bucket 0" 0 (M.bucket_of (-37));
  check "1 lands in bucket 1" 1 (M.bucket_of 1);
  check "2 lands in bucket 2" 2 (M.bucket_of 2);
  check "3 lands in bucket 2" 2 (M.bucket_of 3);
  check "4 lands in bucket 3" 3 (M.bucket_of 4);
  check "255 lands in bucket 8" 8 (M.bucket_of 255);
  check "256 lands in bucket 9" 9 (M.bucket_of 256);
  (* Every bucket's own bounds map back to it. *)
  for i = 1 to M.n_buckets - 1 do
    let lo, hi = M.bucket_bounds i in
    check (Printf.sprintf "lo of bucket %d" i) i (M.bucket_of lo);
    check (Printf.sprintf "hi of bucket %d" i) i (M.bucket_of hi)
  done

let test_histogram_merge_and_diff () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  List.iter (M.observe h) [ 1; 2; 3; 100 ];
  let s1 = M.snapshot r in
  List.iter (M.observe h) [ 7; 7 ];
  let s2 = M.snapshot r in
  (match M.find (M.diff s2 s1) "lat" with
  | Some (M.Histogram d) ->
      check "diff count" 2 d.M.count;
      check "diff sum" 14 d.M.sum;
      check "diff bucket of 7" 2 d.M.buckets.(M.bucket_of 7)
  | _ -> Alcotest.fail "diff lost the histogram");
  match M.find (M.merge s1 s1) "lat" with
  | Some (M.Histogram m) ->
      check "merge doubles count" 8 m.M.count;
      check "merge doubles sum" 212 m.M.sum
  | _ -> Alcotest.fail "merge lost the histogram"

let test_golden_render () =
  let r = M.create () in
  M.inc (M.counter r "a.count") 3;
  M.set (M.gauge r "b.level") 7;
  let h = M.histogram r "c.hist" in
  List.iter (M.observe h) [ 1; 2; 3 ];
  let expected =
    "a.count                                  3\n\
     b.level                                  7 (gauge)\n\
     c.hist                                   count=3 sum=6\n\
    \  [1,1]=1 [2,3]=2\n"
  in
  check_s "stable rendering" expected (M.render (M.snapshot r))

let test_counter_diff_absent () =
  let r = M.create () in
  M.inc (M.counter r "present") 5;
  let s = M.snapshot r in
  check "absent name diffs as 0" 0 (M.counter_diff s s "never-registered");
  check "against empty snapshot" 5 (M.counter_diff s [] "present")

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_wraparound () =
  Trace.enable ~capacity:8 ();
  for i = 1 to 12 do
    Trace.span Trace.Send_marshal ~packet:i ~ts:(float_of_int i) ~dur:1.0
  done;
  Trace.disable ();
  let spans = Trace.spans () in
  check "ring keeps capacity spans" 8 (List.length spans);
  check "recorded counts evictions" 12 (Trace.recorded ());
  check "dropped = overflow" 4 (Trace.dropped ());
  (* Oldest first, the first four evicted, none duplicated. *)
  List.iteri
    (fun i (s : Trace.span_rec) -> check "oldest-first order" (i + 5) s.Trace.packet)
    spans

let test_packet_ids () =
  Trace.disable ();
  check "begin_packet disabled is 0" 0 (Trace.begin_packet ());
  Trace.enable ~capacity:16 ();
  let a = Trace.begin_packet () in
  let b = Trace.begin_packet () in
  checkb "ids increase" true (b = a + 1);
  check "current tracks last begin" b (Trace.current_packet ());
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* Traced vs untraced: identical bytes, identical cycles *)

let make_sim () = Sim.create (Config.custom ())

let install sim s =
  let addr = Alloc.alloc sim.Sim.alloc ~align:8 (String.length s) in
  Mem.poke_string sim.Sim.mem ~pos:addr s;
  addr

let read_back sim addr len =
  Bytes.to_string (Mem.peek_bytes sim.Sim.mem ~pos:addr ~len)

(* One send + one receive through a fresh engine; returns the wire bytes
   and the total simulated cycles the run charged. *)
let send_recv ~mode ~header_style =
  let sim = make_sim () in
  let cipher = Ilp_cipher.Safer_simplified.charged sim ~key:"engineKY" () in
  let eng = Engine.create sim ~cipher ~mode ~header_style () in
  let payload = String.init 333 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"PFXWORDS" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  (match mode with
  | Engine.Ilp -> (
      match Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
  | Engine.Separate -> (
      match Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
  (read_back sim wire prepared.Engine.len, Machine.cycles sim.Sim.machine)

let test_tracing_changes_nothing () =
  List.iter
    (fun (mode, style, name) ->
      Trace.disable ();
      let wire_off, cycles_off = send_recv ~mode ~header_style:style in
      Trace.enable ~capacity:4096 ();
      let wire_on, cycles_on = send_recv ~mode ~header_style:style in
      let n_spans = List.length (Trace.spans ()) in
      Trace.disable ();
      check_s (name ^ ": identical wire bytes") wire_off wire_on;
      Alcotest.(check (float 0.0))
        (name ^ ": identical cycle charges")
        cycles_off cycles_on;
      (* ILP: 4 fused send + 3 fused recv spans.  Separate: 3 send passes
         + 2 recv passes — the TCP checksum stage belongs to the socket,
         which this direct engine drive bypasses. *)
      let min_spans = match mode with Engine.Ilp -> 7 | Engine.Separate -> 5 in
      checkb (name ^ ": spans were recorded") true (n_spans >= min_spans))
    [ (Engine.Ilp, Engine.Leading, "ilp/leading");
      (Engine.Ilp, Engine.Trailer, "ilp/trailer");
      (Engine.Separate, Engine.Leading, "separate/leading");
      (Engine.Separate, Engine.Trailer, "separate/trailer") ]

let test_tracing_changes_nothing_framed () =
  (* The framed receive adds prelude parsing, combined checksums and
     final placement to the traced path; instrumenting it must still
     change nothing — identical payload and wire bytes either way. *)
  let module Ft = Ilp_app.File_transfer in
  let setup =
    { (Ft.default_setup ~machine:(Config.custom ()) ~mode:Engine.Ilp) with
      Ft.framing = true;
      mss = Some 256;
      copies = 2 }
  in
  Trace.disable ();
  let off = Ft.run setup in
  Trace.enable ~capacity:65536 ();
  let on = Ft.run setup in
  let n_spans = List.length (Trace.spans ()) in
  Trace.disable ();
  checkb "both framed runs completed" true (off.Ft.ok && on.Ft.ok);
  check "identical payload bytes" off.Ft.payload_bytes on.Ft.payload_bytes;
  check "identical wire bytes" off.Ft.wire_bytes on.Ft.wire_bytes;
  check "identical replies" off.Ft.n_replies on.Ft.n_replies;
  checkb "framed spans were recorded" true (n_spans > 0)

let test_disabled_path_allocation_free () =
  Trace.disable ();
  let c = M.counter M.default "test_obs.probe" in
  let h = M.histogram M.default "test_obs.probe_hist" in
  let n = 10_000 in
  let one () =
    let t0 = if Trace.enabled () then Trace.now () else 0.0 in
    Trace.span Trace.Send_marshal ~packet:(Trace.current_packet ()) ~ts:t0
      ~dur:0.0;
    Trace.instant Trace.Tcp_retransmit ~packet:0 ~ts:0.0;
    ignore (Trace.begin_packet ());
    M.inc c 1;
    M.observe h 42
  in
  for _ = 1 to 64 do one () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to n do one () done;
  let per_call = (Gc.minor_words () -. w0) /. float_of_int n in
  checkb
    (Printf.sprintf "disabled instrumentation allocates (%.4f words/call)"
       per_call)
    true (per_call <= 0.01)

(* ------------------------------------------------------------------ *)
(* Conservation: bespoke ledgers = registry mirrors *)

let d later earlier name = M.counter_diff later earlier name

let test_conservation_chaos_soak () =
  let cfg =
    { Soak.default_config with Soak.iterations = 8; file_len = 256; max_reply = 128 }
  in
  let before = M.snapshot M.default in
  let o = Soak.run cfg in
  let after = M.snapshot M.default in
  checkb "soak invariants hold" true (Soak.invariants_hold o);
  let link = o.Soak.link in
  check "link.sent" link.Link.sent (d after before "link.sent");
  check "link.delivered" link.Link.delivered (d after before "link.delivered");
  check "link.dropped" link.Link.dropped (d after before "link.dropped");
  check "link.duplicated" link.Link.duplicated (d after before "link.duplicated");
  check "link.corrupted" link.Link.corrupted (d after before "link.corrupted");
  check "link.truncated" link.Link.truncated (d after before "link.truncated");
  check "link.padded" link.Link.padded (d after before "link.padded");
  check "link.burst_dropped" link.Link.burst_dropped
    (d after before "link.burst_dropped");
  check "link.delay_spikes" link.Link.delay_spikes
    (d after before "link.delay_spikes");
  List.iter
    (fun (reason, n) ->
      let name = "tcp.drop." ^ Socket.drop_reason_to_string reason in
      check name n (d after before name))
    o.Soak.drops;
  check "rpc.replies_abandoned" o.Soak.replies_abandoned
    (d after before "rpc.replies_abandoned")

let test_conservation_overload_soak () =
  let cfg = Soak.default_overload_config in
  let before = M.snapshot M.default in
  let o = Soak.run_overload cfg in
  let after = M.snapshot M.default in
  checkb "overload invariants hold" true (Soak.overload_invariants_hold o);
  List.iter
    (fun (reason, n) ->
      let name = "rpc.shed." ^ Rpc_server.shed_reason_to_string reason in
      check name n (d after before name))
    o.Soak.sheds;
  check "rpc.client.busy_replies" o.Soak.busy_replies
    (d after before "rpc.client.busy_replies");
  check "rpc.client.retries" o.Soak.client_retries
    (d after before "rpc.client.retries");
  check "tcp.persist_probes" o.Soak.persist_probes
    (d after before "tcp.persist_probes");
  check "rpc.replies_abandoned" o.Soak.replies_abandoned
    (d after before "rpc.replies_abandoned");
  (* The lying-receiver persona: forged acks land in link.tampered, and
     the server's rejections are the socket SACK-invalid counter plus
     any typed Misbehaving_peer abort. *)
  check "link.tampered" o.Soak.forged_acks (d after before "link.tampered");
  check "forged rejections = sack_invalid + misbehaving aborts"
    o.Soak.forged_rejections
    (d after before "tcp.sack_invalid"
    + d after before "tcp.abort.misbehaving_peer")

(* ------------------------------------------------------------------ *)
(* Tracerun: the ilpbench trace driver *)

let test_tracerun_quick_complete () =
  let r = Ilp_bench.Tracerun.run ~quick:true () in
  checkb "at least one complete send and recv chain" true
    (Ilp_bench.Tracerun.complete r);
  check "nothing evicted at this size" 0 r.Ilp_bench.Tracerun.dropped;
  checkb "chrome json shape" true
    (String.length r.Ilp_bench.Tracerun.json > 2
    && String.sub r.Ilp_bench.Tracerun.json 0 15 = "{\"traceEvents\":")

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
          Alcotest.test_case "log2 bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram merge and diff" `Quick
            test_histogram_merge_and_diff;
          Alcotest.test_case "golden render" `Quick test_golden_render;
          Alcotest.test_case "counter_diff of absent names" `Quick
            test_counter_diff_absent ] );
      ( "trace",
        [ Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "packet ids" `Quick test_packet_ids ] );
      ( "overhead",
        [ Alcotest.test_case "traced = untraced (bytes and cycles)" `Quick
            test_tracing_changes_nothing;
          Alcotest.test_case "traced = untraced (framed receive)" `Quick
            test_tracing_changes_nothing_framed;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_allocation_free ] );
      ( "conservation",
        [ Alcotest.test_case "chaos soak ledgers = metrics" `Slow
            test_conservation_chaos_soak;
          Alcotest.test_case "overload ledgers = metrics" `Slow
            test_conservation_overload_soak ] );
      ( "tracerun",
        [ Alcotest.test_case "quick trace has complete chains" `Slow
            test_tracerun_quick_complete ] ) ]
