(* The ILP engine: unit arithmetic, word filters, message parts, the two
   pipeline drivers (whose outputs must be byte-identical), and the
   integrated engine round trip. *)

open Ilp_memsim
module Internet = Ilp_checksum.Internet
open Ilp_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_gcd_lcm () =
  check "gcd" 4 (Units.gcd 12 8);
  check "gcd zero" 5 (Units.gcd 0 5);
  check "lcm" 24 (Units.lcm 12 8);
  check "lcm one" 7 (Units.lcm 1 7)

let test_exchange_unit () =
  (* The paper's example: encryption in 8-byte units, checksum in 2-byte
     units, marshalling in 4-byte units -> Le = 8. *)
  check "paper stack" 8 (Units.exchange_unit [ 4; 8; 2 ]);
  check "with bus width" 16 (Units.exchange_unit ~bus_width:16 [ 4; 8; 2 ]);
  (match Units.exchange_unit [] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Units.exchange_unit [ 0 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_aligned () =
  check "already aligned" 16 (Units.aligned 16 ~unit_len:8);
  check "rounds up" 24 (Units.aligned 17 ~unit_len:8);
  check "zero" 0 (Units.aligned 0 ~unit_len:8)

let prop_lcm_divisibility =
  QCheck.Test.make ~count:200 ~name:"Le is divisible by every unit length"
    QCheck.(list_of_size Gen.(int_range 1 5) (int_range 1 16))
    (fun lens ->
      let le = Units.exchange_unit lens in
      List.for_all (fun l -> le mod l = 0) lens)

(* ------------------------------------------------------------------ *)
(* Word filter *)

let test_word_filter_basic () =
  let out = Buffer.create 32 in
  let wf =
    Word_filter.create ~out_len:8 ~emit:(fun b off ->
        Buffer.add_subbytes out b off 8)
  in
  Word_filter.push_string wf "0123";
  check "nothing yet" 0 (Buffer.length out);
  check "pending" 4 (Word_filter.pending wf);
  Word_filter.push_string wf "45678";
  check_s "one unit out" "01234567" (Buffer.contents out);
  check "one byte pending" 1 (Word_filter.pending wf);
  let padded = Word_filter.flush wf ~pad:'.' in
  check "pad added" 7 padded;
  check_s "flushed" "012345678......." (Buffer.contents out);
  check "emitted" 16 (Word_filter.emitted wf)

let test_word_filter_empty_flush () =
  let wf = Word_filter.create ~out_len:4 ~emit:(fun _ _ -> Alcotest.fail "no emit") in
  check "no pad for empty" 0 (Word_filter.flush wf ~pad:'x')

let test_word_filter_straddling_pushes () =
  let out = Buffer.create 64 in
  let wf =
    Word_filter.create ~out_len:8 ~emit:(fun b off ->
        Buffer.add_subbytes out b off 8)
  in
  let big = Bytes.init 40 (fun i -> Char.chr (0x30 + i)) in
  (* One push spanning two whole units, from a nonzero offset. *)
  Word_filter.push wf big ~off:5 ~len:19;
  check "two units out" 16 (Buffer.length out);
  check "three pending" 3 (Word_filter.pending wf);
  (* The next push straddles the unit boundary twice more. *)
  Word_filter.push wf big ~off:24 ~len:13;
  check "four units out" 32 (Buffer.length out);
  check "lands on a boundary" 0 (Word_filter.pending wf);
  check_s "stream preserved across straddles"
    (Bytes.sub_string big 5 19 ^ Bytes.sub_string big 24 13)
    (Buffer.contents out);
  check "flush on a boundary adds nothing" 0 (Word_filter.flush wf ~pad:'!')

let test_word_filter_partial_flush () =
  let out = Buffer.create 16 in
  let wf =
    Word_filter.create ~out_len:6 ~emit:(fun b off ->
        Buffer.add_subbytes out b off 6)
  in
  Word_filter.push_string wf "ab";
  check "pad completes the unit" 4 (Word_filter.flush wf ~pad:'-');
  check_s "padded unit emitted" "ab----" (Buffer.contents out);
  check "second flush is empty" 0 (Word_filter.flush wf ~pad:'-');
  check "emitted counts the pad" 6 (Word_filter.emitted wf)

let test_word_filter_validation () =
  (match Word_filter.create ~out_len:0 ~emit:(fun _ _ -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument (out_len)"
  | exception Invalid_argument _ -> ());
  let wf = Word_filter.create ~out_len:4 ~emit:(fun _ _ -> ()) in
  match Word_filter.push wf (Bytes.create 4) ~off:2 ~len:4 with
  | _ -> Alcotest.fail "expected Invalid_argument (bounds)"
  | exception Invalid_argument _ -> ()

let prop_word_filter_preserves_stream =
  QCheck.Test.make ~count:200 ~name:"re-chunking preserves the byte stream"
    QCheck.(
      triple (int_range 1 16)
        (list_of_size Gen.(int_range 0 10) (string_of_size Gen.(int_range 0 9)))
        char)
    (fun (out_len, chunks, pad) ->
      let out = Buffer.create 64 in
      let wf =
        Word_filter.create ~out_len ~emit:(fun b off ->
            Buffer.add_subbytes out b off out_len)
      in
      List.iter (Word_filter.push_string wf) chunks;
      let added = Word_filter.flush wf ~pad in
      let whole = String.concat "" chunks in
      Buffer.contents out = whole ^ String.make added pad)

(* ------------------------------------------------------------------ *)
(* Parts *)

let test_parts_paper_layout () =
  (* A 20-byte marshalled body behind the 4-byte length field: 24 bytes
     total, no alignment needed. *)
  let p = Parts.plan ~body_len:20 () in
  check "total" 24 p.Parts.total;
  check "alignment" 0 p.Parts.alignment;
  check "alpha" 4 p.Parts.alpha;
  check "beta" 8 p.Parts.beta;
  check "gamma" 16 p.Parts.gamma;
  checkb "A is the first block" true (Parts.part_a p = (0, 8));
  checkb "B is the middle" true (Parts.part_b p = (8, 8));
  checkb "C is the last block" true (Parts.part_c p = (16, 8));
  check "length field" 24 (Parts.length_field p)

let test_parts_tiny_message () =
  let p = Parts.plan ~body_len:2 () in
  check "one block" 8 p.Parts.total;
  checkb "B empty" true (snd (Parts.part_b p) = 0);
  checkb "C empty" true (snd (Parts.part_c p) = 0);
  checkb "A covers all" true (Parts.part_a p = (0, 8))

let test_parts_order () =
  let p = Parts.plan ~body_len:100 () in
  match Parts.in_processing_order p with
  | [ ("B", _); ("C", _); ("A", _) ] -> ()
  | _ -> Alcotest.fail "processing order must be B, C, A"

let prop_parts_partition =
  QCheck.Test.make ~count:300 ~name:"parts A, B, C tile the message exactly"
    QCheck.(int_range 0 4000)
    (fun body_len ->
      let p = Parts.plan ~body_len () in
      let a_off, a_len = Parts.part_a p in
      let b_off, b_len = Parts.part_b p in
      let c_off, c_len = Parts.part_c p in
      p.Parts.total mod 8 = 0
      && p.Parts.total >= 4 + body_len
      && p.Parts.alignment < 8
      && a_off = 0
      && a_len = 8
      && b_off = 8
      && c_off = b_off + b_len
      && a_len + b_len + c_len = p.Parts.total)

(* ------------------------------------------------------------------ *)
(* Pipeline: the central equivalence *)

let make_sim () = Sim.create (Config.custom ())

let install sim s =
  let addr = Alloc.alloc sim.Sim.alloc ~align:8 (String.length s) in
  Mem.poke_string sim.Sim.mem ~pos:addr s;
  addr

let read_back sim addr len =
  Bytes.to_string (Mem.peek_bytes sim.Sim.mem ~pos:addr ~len)

let stack_of_cipher sim which =
  match which with
  | 0 -> [ Dmf.of_cipher_encrypt (Ilp_cipher.Simple_cipher.charged sim) ]
  | 1 ->
      [ Dmf.marshalling sim ();
        Dmf.of_cipher_encrypt
          (Ilp_cipher.Safer_simplified.charged sim ~key:"abcdefgh" ()) ]
  | _ ->
      [ Dmf.marshalling sim ();
        Dmf.of_cipher_encrypt (Ilp_cipher.Safer.charged sim ~key:"abcdefgh" ()) ]

let test_word_filter_lcm_exchange_unit () =
  (* Sizing a filter by the pipeline's exchange unit (section 2.2): every
     emit is one whole Le block, so a downstream stage never sees a
     partial unit regardless of how the input arrives. *)
  let sim = make_sim () in
  let stages =
    [ Dmf.marshalling sim ();
      Dmf.of_cipher_encrypt
        (Ilp_cipher.Safer_simplified.charged sim ~key:"abcdefgh" ()) ]
  in
  let spec = Pipeline.spec stages in
  let le = Pipeline.exchange_len spec in
  check "Le = LCM of the stage units" (Units.exchange_unit [ 4; 8 ]) le;
  let emits = ref 0 in
  let wf = Word_filter.create ~out_len:le ~emit:(fun _ _ -> incr emits) in
  let chunks = [ "123"; String.make 13 'x'; ""; String.make 17 'y' ] in
  List.iter (Word_filter.push_string wf) chunks;
  ignore (Word_filter.flush wf ~pad:'\000');
  let total = List.fold_left (fun n s -> n + String.length s) 0 chunks in
  check "stream re-chunked into Le units" ((total + le - 1) / le) !emits;
  check "emitted is a multiple of Le" 0 (Word_filter.emitted wf mod le)

let prop_fused_equals_separate =
  QCheck.Test.make ~count:100
    ~name:"run_fused output is byte-identical to sequential passes"
    QCheck.(triple (int_range 0 2) (int_range 1 24) (int_range 0 1000))
    (fun (which, blocks, seed) ->
      let len = blocks * 8 in
      let data =
        String.init len (fun i -> Char.chr ((i * 31 + seed) land 0xff))
      in
      (* Separate: one pass per stage through an intermediate buffer. *)
      let sim1 = make_sim () in
      let stages1 = stack_of_cipher sim1 which in
      let src1 = install sim1 data in
      let buf1 = Alloc.alloc sim1.Sim.alloc ~align:8 len in
      List.iteri
        (fun i stage ->
          let src = if i = 0 then src1 else buf1 in
          Pipeline.run_pass sim1 stage ~src ~dst:buf1 ~len ())
        stages1;
      let sep = read_back sim1 buf1 len in
      (* Fused: single loop. *)
      let sim2 = make_sim () in
      let stages2 = stack_of_cipher sim2 which in
      let src2 = install sim2 data in
      let buf2 = Alloc.alloc sim2.Sim.alloc ~align:8 len in
      let spec = Pipeline.spec stages2 in
      Pipeline.run_fused sim2 spec ~src:src2 ~dst:buf2 ~len;
      let fus = read_back sim2 buf2 len in
      String.equal sep fus)

let prop_tap_checksum_correct =
  QCheck.Test.make ~count:100
    ~name:"the fused checksum tap equals a separate checksum pass"
    QCheck.(pair (int_range 1 20) (int_range 0 1000))
    (fun (blocks, seed) ->
      let len = blocks * 8 in
      let data = String.init len (fun i -> Char.chr ((i * 7 + seed) land 0xff)) in
      let sim = make_sim () in
      let stages =
        [ Dmf.of_cipher_encrypt (Ilp_cipher.Safer_simplified.charged sim ~key:"01234567" ()) ]
      in
      let src = install sim data in
      let dst = Alloc.alloc sim.Sim.alloc ~align:8 len in
      let cell = ref Internet.empty in
      let tap block ~off ~len = cell := Internet.add_bytes !cell block ~off ~len in
      let spec = Pipeline.spec ~tap ~tap_position:Pipeline.Tap_output stages in
      Pipeline.run_fused sim spec ~src ~dst ~len;
      Internet.finish !cell = Internet.checksum_string (read_back sim dst len))

let prop_tap_input_position =
  QCheck.Test.make ~count:100 ~name:"an input tap sees the untransformed stream"
    QCheck.(int_range 1 20)
    (fun blocks ->
      let len = blocks * 8 in
      let data = String.init len (fun i -> Char.chr ((i * 13) land 0xff)) in
      let sim = make_sim () in
      let stages = [ Dmf.of_cipher_encrypt (Ilp_cipher.Simple_cipher.charged sim) ] in
      let src = install sim data in
      let dst = Alloc.alloc sim.Sim.alloc ~align:8 len in
      let cell = ref Internet.empty in
      let tap block ~off ~len = cell := Internet.add_bytes !cell block ~off ~len in
      let spec = Pipeline.spec ~tap ~tap_position:Pipeline.Tap_input stages in
      Pipeline.run_fused sim spec ~src ~dst ~len;
      Internet.finish !cell = Internet.checksum_string data)

let prop_write_pattern_same_bytes =
  QCheck.Test.make ~count:100 ~name:"store schedule never changes the bytes"
    QCheck.(pair (int_range 1 16) (oneofl [ [ 1 ]; [ 2 ]; [ 4 ]; [ 8 ]; [ 4; 2; 1; 1 ] ]))
    (fun (blocks, pattern) ->
      let len = blocks * 8 in
      let data = String.init len (fun i -> Char.chr ((i * 3) land 0xff)) in
      let sim = make_sim () in
      let stages = [ Dmf.of_cipher_encrypt (Ilp_cipher.Simple_cipher.charged sim) ] in
      let src = install sim data in
      let dst = Alloc.alloc sim.Sim.alloc ~align:8 len in
      let spec = Pipeline.spec ~write_pattern:pattern stages in
      Pipeline.run_fused sim spec ~src ~dst ~len;
      read_back sim dst len = Ilp_cipher.Simple_cipher.encrypt_string data)

let test_pipeline_in_place_pass () =
  let sim = make_sim () in
  let data = "0123456789abcdef" in
  let addr = install sim data in
  let stage = Dmf.of_cipher_encrypt (Ilp_cipher.Simple_cipher.charged sim) in
  Pipeline.run_pass sim stage ~src:addr ~dst:addr ~len:16 ();
  check_s "in place" (Ilp_cipher.Simple_cipher.encrypt_string data) (read_back sim addr 16)

let test_pipeline_length_validation () =
  let sim = make_sim () in
  let stage = Dmf.of_cipher_encrypt (Ilp_cipher.Simple_cipher.charged sim) in
  match Pipeline.run_fused sim (Pipeline.spec [ stage ]) ~src:64 ~dst:128 ~len:12 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_linkage_costs_more () =
  let run linkage =
    let sim = make_sim () in
    let stages =
      [ Dmf.marshalling sim ();
        Dmf.of_cipher_encrypt (Ilp_cipher.Safer_simplified.charged sim ~key:"abcdefgh" ()) ]
    in
    let src = install sim (String.make 512 'x') in
    let dst = Alloc.alloc sim.Sim.alloc ~align:8 512 in
    Machine.reset_counters sim.Sim.machine;
    Pipeline.run_fused sim (Pipeline.spec ~linkage stages) ~src ~dst ~len:512;
    Machine.cycles sim.Sim.machine
  in
  checkb "function calls cost more than macros" true
    (run Linkage.function_calls > run Linkage.Macro)

let test_linkage_code_scale () =
  check "macro duplicates" 300 (Linkage.code_scale Linkage.Macro ~expansion_sites:3 100);
  check "calls share" 100
    (Linkage.code_scale Linkage.function_calls ~expansion_sites:3 100);
  check "call ops" 15 (Linkage.call_ops Linkage.function_calls);
  check "macro free" 0 (Linkage.call_ops Linkage.Macro)

(* ------------------------------------------------------------------ *)
(* Dmf *)

let test_dmf_apply_over () =
  let count = ref 0 in
  let d = Dmf.create ~name:"probe" ~unit_len:4 ~code:Code.none (fun _ _ -> incr count) in
  Dmf.apply_over d (Bytes.create 16) ~off:0 ~len:16;
  check "applied per unit" 4 !count;
  match Dmf.apply_over d (Bytes.create 10) ~off:0 ~len:10 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_dmf_identity () =
  let d = Dmf.identity 8 in
  let b = Bytes.of_string "ABCDEFGH" in
  d.Dmf.transform b 0;
  check_s "unchanged" "ABCDEFGH" (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Engine round trips *)

let make_engine ?(mode = Engine.Ilp) ?(header_style = Engine.Leading)
    ?(coalesce_writes = false) ?(crc32 = false) ?cipher () =
  let sim = make_sim () in
  let cipher =
    match cipher with
    | Some c -> c sim
    | None -> Ilp_cipher.Safer_simplified.charged sim ~key:"engineKY" ()
  in
  (sim, Engine.create sim ~cipher ~mode ~coalesce_writes ~header_style ~crc32 ())

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let engine_roundtrip ~mode ~header_style ~prefix ~payload =
  let sim, eng = make_engine ~mode ~header_style () in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix ~payload_addr ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  let acc_opt = prepared.Engine.fill sim.Sim.mem ~dst:wire in
  (* Receive through the same engine (fresh buffers are enough: the
     engine's rx writes into its own area). *)
  (match mode with
  | Engine.Ilp ->
      let acc =
        ok_or_fail
          (Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len)
      in
      (* The send-side accumulator and receive-side accumulator both cover
         the same ciphertext. *)
      (match acc_opt with
      | Some send_acc ->
          check "send acc = recv acc" (Internet.finish send_acc) (Internet.finish acc)
      | None -> Alcotest.fail "ILP fill must return a checksum")
  | Engine.Separate ->
      checkb "separate fill returns no checksum" true (acc_opt = None);
      ok_or_fail (Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
  let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
  (* The plaintext must contain the prefix at position 4 (leading) or 0
     (trailer), followed by the payload. *)
  let off = match header_style with Engine.Leading -> 4 | Engine.Trailer -> 0 in
  check_s "prefix recovered" prefix (String.sub plaintext off (String.length prefix));
  check_s "payload recovered" payload
    (String.sub plaintext (off + String.length prefix) (String.length payload))

let test_engine_roundtrip_ilp () =
  engine_roundtrip ~mode:Engine.Ilp ~header_style:Engine.Leading
    ~prefix:"HDRWORDS12345678" ~payload:"the payload bytes!"

let test_engine_roundtrip_separate () =
  engine_roundtrip ~mode:Engine.Separate ~header_style:Engine.Leading
    ~prefix:"HDRWORDS12345678" ~payload:"the payload bytes!"

let test_engine_roundtrip_trailer () =
  engine_roundtrip ~mode:Engine.Ilp ~header_style:Engine.Trailer
    ~prefix:"HDRWORDS12345678" ~payload:"the payload bytes!"

let test_engine_modes_agree () =
  (* Both implementations must put the same ciphertext on the wire. *)
  let payload = String.init 333 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let prefix = "PFXWORDS" in
  let run mode =
    let sim, eng = make_engine ~mode () in
    let payload_addr = install sim payload in
    let prepared =
      Engine.prepare_send eng ~prefix ~payload_addr ~payload_len:(String.length payload)
    in
    let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
    ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
    read_back sim wire prepared.Engine.len
  in
  check_s "identical wire bytes" (run Engine.Separate) (run Engine.Ilp)

let test_engine_ilp_checksum_matches_wire () =
  (* The fused loop's checksum must equal a separate checksum of what it
     wrote — TCP relies on this. *)
  let payload = String.init 200 (fun i -> Char.chr ((i * 5) land 0xff)) in
  let sim, eng = make_engine ~mode:Engine.Ilp () in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"ABCD" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  match prepared.Engine.fill sim.Sim.mem ~dst:wire with
  | None -> Alcotest.fail "expected a checksum"
  | Some acc ->
      check "tap checksum = wire checksum"
        (Internet.checksum_string (read_back sim wire prepared.Engine.len))
        (Internet.finish acc)

let prop_engine_roundtrip_sizes =
  QCheck.Test.make ~count:60 ~name:"engine round trip across payload sizes and modes"
    QCheck.(
      triple (int_range 0 900) (int_range 0 5) (oneofl Engine.[ Ilp; Separate ]))
    (fun (payload_len, prefix_words, mode) ->
      let payload = String.init payload_len (fun i -> Char.chr ((i * 97) land 0xff)) in
      let prefix = String.concat "" (List.init prefix_words (fun _ -> "WXYZ")) in
      let sim, eng = make_engine ~mode () in
      let payload_addr = if payload_len = 0 then 64 else install sim payload in
      let prepared =
        Engine.prepare_send eng ~prefix ~payload_addr ~payload_len
      in
      let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
      let acc_opt = prepared.Engine.fill sim.Sim.mem ~dst:wire in
      (match mode with
      | Engine.Ilp ->
          ignore
            (ok_or_fail
               (Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len))
      | Engine.Separate ->
          ok_or_fail
            (Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
      ignore acc_opt;
      let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
      String.sub plaintext 4 (String.length prefix) = prefix
      && String.sub plaintext (4 + String.length prefix) payload_len = payload)

let test_engine_coalesce_same_bytes () =
  let payload = String.init 120 (fun i -> Char.chr (i * 2 land 0xff)) in
  let run coalesce =
    let sim, eng = make_engine ~mode:Engine.Ilp ~coalesce_writes:coalesce () in
    let payload_addr = install sim payload in
    let prepared =
      Engine.prepare_send eng ~prefix:"PRFX" ~payload_addr
        ~payload_len:(String.length payload)
    in
    let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
    ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
    read_back sim wire prepared.Engine.len
  in
  check_s "LCM stores produce the same ciphertext" (run false) (run true)

let test_engine_rx_late_roundtrip () =
  (* The Late placement (section 3.2.3): TCP checksums separately, the
     deferred fused pass still reconstructs the plaintext. *)
  let payload = String.init 250 (fun i -> Char.chr ((i * 3) land 0xff)) in
  let sim, eng = make_engine ~mode:Engine.Ilp () in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"LATE" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  ok_or_fail (Engine.rx_late eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len);
  let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
  check_s "payload recovered via late placement" payload
    (String.sub plaintext 8 (String.length payload))

let test_engine_rx_style () =
  let style_of ~mode ~rx_placement =
    let sim = make_sim () in
    let cipher = Ilp_cipher.Simple_cipher.charged sim in
    Engine.rx_style (Engine.create sim ~cipher ~mode ~rx_placement ())
  in
  (match style_of ~mode:Engine.Ilp ~rx_placement:Engine.Early with
  | Engine.Rx_integrated_style _ -> ()
  | Engine.Rx_deferred_style _ -> Alcotest.fail "ILP/Early must integrate");
  (match style_of ~mode:Engine.Ilp ~rx_placement:Engine.Late with
  | Engine.Rx_deferred_style _ -> ()
  | Engine.Rx_integrated_style _ -> Alcotest.fail "ILP/Late must defer");
  match style_of ~mode:Engine.Separate ~rx_placement:Engine.Early with
  | Engine.Rx_deferred_style _ -> ()
  | Engine.Rx_integrated_style _ -> Alcotest.fail "Separate never integrates"

let test_engine_segments_multi_payload () =
  (* The generalized send path: a message whose body interleaves two
     memory-resident runs with generated words (what the ILP-extended stub
     compiler produces) round-trips through the fused loop. *)
  let sim, eng = make_engine ~mode:Engine.Ilp () in
  let a = install sim "alpha-region-data" and b = install sim "beta!!" in
  let body =
    [ Engine.Seg_gen "HDR1";
      Engine.Seg_app { addr = a; len = 17 };
      Engine.Seg_gen "\000\000\000MID0";
      Engine.Seg_app { addr = b; len = 6 };
      Engine.Seg_gen "\000\000TL" ]
  in
  let prepared = Engine.prepare_send_segments eng body in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  let acc = Option.get (prepared.Engine.fill sim.Sim.mem ~dst:wire) in
  check "wire checksum matches the fused tap"
    (Internet.checksum_string (read_back sim wire prepared.Engine.len))
    (Internet.finish acc);
  ignore
    (ok_or_fail
       (Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
  let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
  let expected = "HDR1alpha-region-data\000\000\000MID0beta!!\000\000TL" in
  check_s "body reconstructed" expected
    (String.sub plaintext 4 (String.length expected))

let test_engine_stream_ranges_match_whole () =
  (* prepare_stream_segments: filling aligned ranges — here deliberately
     back to front — must produce exactly the bytes of the whole-message
     fill, for both modes, both header styles and with the CRC trailer.
     This is what lets TCP cut a TSDU into MSS segments, each produced by
     an independent fused pass into the retransmission ring. *)
  let payload = String.init 480 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let tail = String.init 36 (fun i -> Char.chr ((i * 13 + 5) land 0xff)) in
  let mk_world ~mode ~header_style ~crc32 =
    let sim, eng = make_engine ~mode ~header_style ~crc32 () in
    let a = install sim payload and b = install sim tail in
    let body =
      [ Engine.Seg_gen "STRMHDR0";
        Engine.Seg_app { addr = a; len = String.length payload };
        Engine.Seg_gen "MID4";
        Engine.Seg_app { addr = b; len = String.length tail } ]
    in
    (sim, eng, body)
  in
  List.iter
    (fun (mode, header_style, crc32, name) ->
      let sim1, eng1, body1 = mk_world ~mode ~header_style ~crc32 in
      let prepared = Engine.prepare_send_segments eng1 body1 in
      let w1 = Alloc.alloc sim1.Sim.alloc ~align:8 prepared.Engine.len in
      ignore (prepared.Engine.fill sim1.Sim.mem ~dst:w1);
      let whole = read_back sim1 w1 prepared.Engine.len in
      let sim2, eng2, body2 = mk_world ~mode ~header_style ~crc32 in
      let ps = Engine.prepare_stream_segments eng2 body2 in
      check (name ^ ": wire length agrees") prepared.Engine.len
        ps.Engine.stream_len;
      let unit = ps.Engine.seg_unit in
      check (name ^ ": message cuttable into aligned ranges") 0
        (ps.Engine.stream_len mod unit);
      let w2 = Alloc.alloc sim2.Sim.alloc ~align:8 ps.Engine.stream_len in
      (* Uneven unit-aligned cuts, filled in reverse order. *)
      let cuts = ref [] in
      let off = ref 0 in
      let k = ref 0 in
      while !off < ps.Engine.stream_len do
        let len = min (unit * (1 + (!k mod 3))) (ps.Engine.stream_len - !off) in
        cuts := (!off, len) :: !cuts;
        off := !off + len;
        incr k
      done;
      List.iter
        (fun (off, len) ->
          ignore (ps.Engine.fill_range sim2.Sim.mem ~dst:(w2 + off) ~off ~len))
        !cuts;
      check_s (name ^ ": range fills = whole-message fill") whole
        (read_back sim2 w2 ps.Engine.stream_len))
    [ (Engine.Ilp, Engine.Leading, false, "ilp/leading");
      (Engine.Separate, Engine.Leading, false, "separate/leading");
      (Engine.Ilp, Engine.Trailer, false, "ilp/trailer");
      (Engine.Ilp, Engine.Leading, true, "ilp/leading+crc") ]

let test_engine_stream_range_validation () =
  let sim, eng = make_engine ~mode:Engine.Ilp () in
  let a = install sim "0123456789abcdef" in
  let ps =
    Engine.prepare_stream_segments eng [ Engine.Seg_app { addr = a; len = 16 } ]
  in
  let u = ps.Engine.seg_unit in
  let bad ~off ~len =
    match ps.Engine.fill_range sim.Sim.mem ~dst:64 ~off ~len with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "misaligned offset rejected" true (bad ~off:1 ~len:u);
  checkb "misaligned length rejected" true (bad ~off:0 ~len:(u + 1));
  checkb "range past the end rejected" true
    (bad ~off:0 ~len:(ps.Engine.stream_len + u));
  checkb "empty range rejected" true (bad ~off:0 ~len:0)

let test_engine_validations () =
  let _, eng = make_engine () in
  (match Engine.prepare_send eng ~prefix:"abc" ~payload_addr:0 ~payload_len:0 with
  | _ -> Alcotest.fail "expected Invalid_argument (prefix alignment)"
  | exception Invalid_argument _ -> ());
  match Engine.prepare_send eng ~prefix:"" ~payload_addr:0 ~payload_len:100_000 with
  | _ -> Alcotest.fail "expected Invalid_argument (too big)"
  | exception Invalid_argument _ -> ()

let test_engine_rx_totality () =
  (* The receive path is total: implausible segment lengths come back as
     Error, never as an exception or an out-of-bounds access. *)
  let sim, eng = make_engine ~mode:Engine.Separate () in
  let bad l = Result.is_error (Engine.rx_separate eng sim.Sim.mem ~src:64 ~dst_off:0 ~len:l) in
  checkb "zero length rejected" true (bad 0);
  checkb "negative length rejected" true (bad (-8));
  checkb "non-block-multiple rejected" true (bad 13);
  checkb "oversize rejected" true (bad 1_000_000);
  let sim2, eng2 = make_engine ~mode:Engine.Ilp () in
  checkb "integrated path rejects too" true
    (Result.is_error (Engine.rx_integrated eng2 sim2.Sim.mem ~src:64 ~dst_off:0 ~len:(-8)));
  checkb "read_plaintext guards its length" true
    (Result.is_error (Engine.read_plaintext eng2 ~len:2)
    && Result.is_error (Engine.read_plaintext eng2 ~len:1_000_000))

let test_engine_rx_bad_length_field () =
  (* Deliver a legitimate ciphertext whose decrypted leading length field
     has been destroyed: rx must report a typed error. *)
  let payload = String.init 96 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let sim, eng = make_engine ~mode:Engine.Separate () in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  (* Scramble the first cipher block, where the length word lives. *)
  for i = 0 to 7 do
    let v = Mem.peek_u8 sim.Sim.mem (wire + i) in
    Mem.poke_u8 sim.Sim.mem (wire + i) ((v lxor 0xa5) land 0xff)
  done;
  match Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
  | Error _ -> ()
  | Ok () ->
      (* The mangled length may still decode plausibly; then the final read
         must be the guard that fails or succeed with garbage of the right
         shape — but it must not raise. *)
      (match Engine.read_plaintext eng ~len:prepared.Engine.len with
      | Ok _ | Error _ -> ())

let prop_engine_all_flag_combinations =
  QCheck.Test.make ~count:120
    ~name:"engine round trip holds for every flag combination"
    QCheck.(
      pair
        (quad (oneofl Engine.[ Ilp; Separate ])
           (oneofl Engine.[ Leading; Trailer ])
           (oneofl Engine.[ Early; Late ])
           (pair bool bool))
        (int_range 0 700))
    (fun ((mode, header_style, rx_placement, (coalesce, uniform)), payload_len) ->
      let sim = make_sim () in
      let cipher = Ilp_cipher.Safer_simplified.charged sim ~key:"combokey" () in
      let eng =
        Engine.create sim ~cipher ~mode ~header_style ~rx_placement
          ~coalesce_writes:coalesce ~uniform_units:uniform ()
      in
      let payload = String.init payload_len (fun i -> Char.chr ((i * 41) land 0xff)) in
      let payload_addr = if payload_len = 0 then 64 else install sim payload in
      let prepared = Engine.prepare_send eng ~prefix:"CMBO" ~payload_addr ~payload_len in
      let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
      let acc_opt = prepared.Engine.fill sim.Sim.mem ~dst:wire in
      (* The checksum contract per mode. *)
      let checksum_ok =
        match (mode, acc_opt) with
        | Engine.Separate, None -> true
        | Engine.Ilp, Some acc ->
            Internet.finish acc
            = Internet.checksum_string (read_back sim wire prepared.Engine.len)
        | _, _ -> false
      in
      (match Engine.rx_style eng with
      | Engine.Rx_integrated_style f ->
          ignore (ok_or_fail (f sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len))
      | Engine.Rx_deferred_style f ->
          ok_or_fail (f sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
      let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
      let off = match header_style with Engine.Leading -> 4 | Engine.Trailer -> 0 in
      checksum_ok
      && String.sub plaintext off 4 = "CMBO"
      && String.sub plaintext (off + 4) payload_len = payload)

(* ------------------------------------------------------------------ *)
(* CRC32 end-to-end trailer *)

let crc_roundtrip ~mode ~header_style =
  let prefix = "HDRWORDS" in
  let payload = String.init 96 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let sim, eng = make_engine ~mode ~header_style ~crc32:true () in
  checkb "crc enabled" true (Engine.crc32 eng);
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix ~payload_addr ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  (match Engine.rx_style eng with
  | Engine.Rx_integrated_style f ->
      ignore (ok_or_fail (f sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len))
  | Engine.Rx_deferred_style f ->
      ok_or_fail (f sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
  let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
  let off = match header_style with Engine.Leading -> 4 | Engine.Trailer -> 0 in
  check_s "prefix recovered" prefix (String.sub plaintext off (String.length prefix));
  check_s "payload recovered" payload
    (String.sub plaintext (off + String.length prefix) (String.length payload))

let test_engine_crc_roundtrips () =
  List.iter
    (fun (mode, style) -> crc_roundtrip ~mode ~header_style:style)
    Engine.
      [ (Ilp, Leading); (Ilp, Trailer); (Separate, Leading); (Separate, Trailer) ]

(* A corruption crafted to collide in the 16-bit Internet checksum:
   adding 1 to one 16-bit word and subtracting 1 from another preserves
   the one's-complement sum, so TCP's verdict cannot catch it.  Without
   the CRC trailer such a segment sails through to the application with
   scrambled plaintext (the DESIGN.md section 9 hole); with it,
   [read_plaintext] rejects. *)
let collide_wire sim wire len =
  let get16 off =
    (Mem.peek_u8 sim.Sim.mem (wire + off) lsl 8)
    lor Mem.peek_u8 sim.Sim.mem (wire + off + 1)
  in
  let put16 off v =
    Mem.poke_u8 sim.Sim.mem (wire + off) ((v lsr 8) land 0xff);
    Mem.poke_u8 sim.Sim.mem (wire + off + 1) (v land 0xff)
  in
  (* Search the third cipher block onward (the leading length field lives
     in block 0) for an incrementable and a decrementable word. *)
  let rec find p off =
    if off + 2 > len then Alcotest.fail "no collision site found"
    else if p (get16 off) then off
    else find p (off + 2)
  in
  let off_inc = find (fun w -> w < 0xffff) 16 in
  let off_dec = find (fun w -> w > 0 && (w < 0xffff || off_inc <> 16)) 18 in
  if off_inc = off_dec then Alcotest.fail "collision offsets clash";
  put16 off_inc (get16 off_inc + 1);
  put16 off_dec (get16 off_dec - 1)

let crc_collision ~crc32 =
  let prefix = "HDRWORDS" in
  let payload = String.init 96 (fun i -> Char.chr ((i * 29) land 0xff)) in
  let sim, eng = make_engine ~mode:Engine.Separate ~crc32 () in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix ~payload_addr ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  let before = read_back sim wire prepared.Engine.len in
  collide_wire sim wire prepared.Engine.len;
  let after = read_back sim wire prepared.Engine.len in
  checkb "wire actually corrupted" false (before = after);
  check "Internet checksum collides"
    (Internet.checksum_string before)
    (Internet.checksum_string after);
  ok_or_fail (Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len);
  Engine.read_plaintext eng ~len:prepared.Engine.len

let test_engine_crc_catches_collision () =
  (* Without the trailer the colliding corruption reaches the application
     as scrambled-but-accepted plaintext (the length field lives in an
     untouched block, so the only guard left is the application's own).
     With it, the read is a typed rejection. *)
  (match crc_collision ~crc32:false with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "without crc the collision should be silent, got: %s" e);
  match crc_collision ~crc32:true with
  | Error e ->
      let contains hay needle =
        let h = String.length hay and n = String.length needle in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      checkb "crc mismatch reported" true
        (contains (String.lowercase_ascii e) "crc")
  | Ok _ -> Alcotest.fail "crc32 must reject the colliding corruption"

let test_engine_crc_wire_len () =
  (* The trailer adds exactly one word to the encrypted length. *)
  let _, plain = make_engine () in
  let _, with_crc = make_engine ~crc32:true () in
  check "one extra word, same alignment"
    (Engine.wire_len plain ~prefix_len:8 ~payload_len:100 + 8)
    (Engine.wire_len with_crc ~prefix_len:8 ~payload_len:104)

(* ------------------------------------------------------------------ *)
(* Data path: the pooled single-copy path must be indistinguishable from
   the legacy allocating path in everything but host-side allocation —
   same wire bytes, same recovered plaintext, same decode errors. *)

(* One full transfer; returns the engine (rx already run), the wire
   bytes, and the wire length, leaving the plaintext readable. *)
let transfer_with ~mode ~header_style ~crc32 ~data_path ?pool () =
  let sim = make_sim () in
  let cipher = Ilp_cipher.Safer_simplified.charged sim ~key:"engineKY" () in
  let eng =
    Engine.create sim ~cipher ~mode ~header_style ~crc32 ~data_path ?pool ()
  in
  let payload = String.init 333 (fun i -> Char.chr ((i * 37 + 5) land 0xff)) in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"HDRWORDS" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  (match Engine.rx_style eng with
  | Engine.Rx_integrated_style rx ->
      ignore (ok_or_fail (rx sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len))
  | Engine.Rx_deferred_style rx ->
      ok_or_fail (rx sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
  (sim, eng, read_back sim wire prepared.Engine.len, prepared.Engine.len)

let all_engine_variants =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun header_style ->
          List.map (fun crc32 -> (mode, header_style, crc32)) [ false; true ])
        [ Engine.Leading; Engine.Trailer ])
    [ Engine.Ilp; Engine.Separate ]

let test_data_path_wire_identical () =
  List.iter
    (fun (mode, header_style, crc32) ->
      let _, ep, wire_p, len_p =
        transfer_with ~mode ~header_style ~crc32 ~data_path:Engine.Pooled ()
      in
      let _, el, wire_l, len_l =
        transfer_with ~mode ~header_style ~crc32 ~data_path:Engine.Legacy ()
      in
      check "wire length identical" len_p len_l;
      check_s "wire bytes identical pooled vs legacy" wire_p wire_l;
      Engine.destroy ep;
      Engine.destroy el)
    all_engine_variants

let test_data_path_plaintext_identical () =
  List.iter
    (fun (mode, header_style, crc32) ->
      (* Same engine: both read paths must decode the same TSDU. *)
      List.iter
        (fun data_path ->
          let _, eng, _, len =
            transfer_with ~mode ~header_style ~crc32 ~data_path ()
          in
          let legacy = ok_or_fail (Engine.read_plaintext eng ~len) in
          let buf, n = ok_or_fail (Engine.read_plaintext_pooled eng ~len) in
          check_s "pooled read = legacy read" legacy (Bytes.sub_string buf 0 n);
          Engine.release_plaintext eng buf;
          Engine.destroy eng;
          check "pool balanced after release + destroy" 0
            (Ilp_fastpath.Pool.outstanding (Engine.pool eng)))
        [ Engine.Pooled; Engine.Legacy ])
    all_engine_variants

let test_data_path_errors_identical () =
  (* A corruption planted in the decoded plaintext must surface as the
     same error through both read paths. *)
  List.iter
    (fun (poke_off, what) ->
      let _, eng, _, len =
        transfer_with ~mode:Engine.Ilp ~header_style:Engine.Leading ~crc32:true
          ~data_path:Engine.Pooled ()
      in
      let sim_mem_addr = Engine.app_rx_base eng + poke_off in
      let sim = Engine.sim eng in
      Mem.poke_u8 sim.Sim.mem sim_mem_addr
        (Mem.peek_u8 sim.Sim.mem sim_mem_addr lxor 0xff);
      let e_legacy =
        match Engine.read_plaintext eng ~len with
        | Ok _ -> Alcotest.fail (what ^ ": legacy read must reject")
        | Error e -> e
      in
      (match Engine.read_plaintext_pooled eng ~len with
      | Ok (buf, _) ->
          Engine.release_plaintext eng buf;
          Alcotest.fail (what ^ ": pooled read must reject")
      | Error e -> check_s (what ^ ": identical error text") e_legacy e);
      Engine.destroy eng;
      check "no pool leak on error path" 0
        (Ilp_fastpath.Pool.outstanding (Engine.pool eng)))
    [ (0, "length field corrupted"); (40, "payload corrupted under crc") ]

let test_data_path_shared_pool_exhaustion () =
  (* A cap-0 shared pool forces the exhaustion fallback on every acquire;
     transfers must still succeed and stay leak-free. *)
  let pool = Ilp_fastpath.Pool.create ~class_cap:0 () in
  let _, eng, _, len =
    transfer_with ~mode:Engine.Separate ~header_style:Engine.Trailer
      ~crc32:false ~data_path:Engine.Pooled ~pool ()
  in
  let legacy = ok_or_fail (Engine.read_plaintext eng ~len) in
  let buf, n = ok_or_fail (Engine.read_plaintext_pooled eng ~len) in
  check_s "fallback decode identical" legacy (Bytes.sub_string buf 0 n);
  Engine.release_plaintext eng buf;
  Engine.destroy eng;
  let s = Ilp_fastpath.Pool.stats pool in
  checkb "fallback allocated fresh" true (s.Ilp_fastpath.Pool.fresh_allocs > 0);
  check "shared pool balanced" 0 s.Ilp_fastpath.Pool.outstanding

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [ ( "units",
        [ Alcotest.test_case "gcd/lcm" `Quick test_units_gcd_lcm;
          Alcotest.test_case "exchange unit" `Quick test_exchange_unit;
          Alcotest.test_case "aligned" `Quick test_aligned;
          qc prop_lcm_divisibility ] );
      ( "word_filter",
        [ Alcotest.test_case "basic" `Quick test_word_filter_basic;
          Alcotest.test_case "empty flush" `Quick test_word_filter_empty_flush;
          Alcotest.test_case "straddling pushes" `Quick
            test_word_filter_straddling_pushes;
          Alcotest.test_case "partial flush" `Quick test_word_filter_partial_flush;
          Alcotest.test_case "validation" `Quick test_word_filter_validation;
          Alcotest.test_case "LCM exchange-unit sizing" `Quick
            test_word_filter_lcm_exchange_unit;
          qc prop_word_filter_preserves_stream ] );
      ( "parts",
        [ Alcotest.test_case "paper layout" `Quick test_parts_paper_layout;
          Alcotest.test_case "tiny message" `Quick test_parts_tiny_message;
          Alcotest.test_case "B, C, A order" `Quick test_parts_order;
          qc prop_parts_partition ] );
      ( "dmf",
        [ Alcotest.test_case "apply_over" `Quick test_dmf_apply_over;
          Alcotest.test_case "identity" `Quick test_dmf_identity ] );
      ( "pipeline",
        [ Alcotest.test_case "in-place pass" `Quick test_pipeline_in_place_pass;
          Alcotest.test_case "length validation" `Quick test_pipeline_length_validation;
          Alcotest.test_case "linkage cost" `Quick test_linkage_costs_more;
          Alcotest.test_case "code scale" `Quick test_linkage_code_scale;
          qc prop_fused_equals_separate;
          qc prop_tap_checksum_correct;
          qc prop_tap_input_position;
          qc prop_write_pattern_same_bytes ] );
      ( "engine",
        [ Alcotest.test_case "round trip (ILP)" `Quick test_engine_roundtrip_ilp;
          Alcotest.test_case "round trip (separate)" `Quick
            test_engine_roundtrip_separate;
          Alcotest.test_case "round trip (trailer)" `Quick test_engine_roundtrip_trailer;
          Alcotest.test_case "modes produce identical wire bytes" `Quick
            test_engine_modes_agree;
          Alcotest.test_case "ILP checksum matches wire" `Quick
            test_engine_ilp_checksum_matches_wire;
          Alcotest.test_case "coalesced stores same bytes" `Quick
            test_engine_coalesce_same_bytes;
          Alcotest.test_case "late-placement round trip" `Quick
            test_engine_rx_late_roundtrip;
          Alcotest.test_case "rx style selection" `Quick test_engine_rx_style;
          Alcotest.test_case "multi-payload segments" `Quick
            test_engine_segments_multi_payload;
          Alcotest.test_case "stream ranges match whole fill" `Quick
            test_engine_stream_ranges_match_whole;
          Alcotest.test_case "stream range validation" `Quick
            test_engine_stream_range_validation;
          Alcotest.test_case "validations" `Quick test_engine_validations;
          Alcotest.test_case "rx totality" `Quick test_engine_rx_totality;
          Alcotest.test_case "rx bad length field" `Quick
            test_engine_rx_bad_length_field;
          qc prop_engine_roundtrip_sizes;
          qc prop_engine_all_flag_combinations ] );
      ( "crc32",
        [ Alcotest.test_case "round trips (all modes/styles)" `Quick
            test_engine_crc_roundtrips;
          Alcotest.test_case "catches checksum-colliding corruption" `Quick
            test_engine_crc_catches_collision;
          Alcotest.test_case "wire length adds one word" `Quick
            test_engine_crc_wire_len ] );
      ( "data path",
        [ Alcotest.test_case "wire bytes identical pooled vs legacy" `Quick
            test_data_path_wire_identical;
          Alcotest.test_case "plaintext identical across read paths" `Quick
            test_data_path_plaintext_identical;
          Alcotest.test_case "identical errors on corruption" `Quick
            test_data_path_errors_identical;
          Alcotest.test_case "shared-pool exhaustion fallback" `Quick
            test_data_path_shared_pool_exhaustion ] ) ]
