(* XDR / ASN.1 / stub-compiler tests, including random-typed round trips. *)

open Ilp_codec

let check = Alcotest.(check int)
let check_s = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* XDR primitives *)

let test_padding () =
  check "pad 0" 0 (Xdr.padding 0);
  check "pad 1" 3 (Xdr.padding 1);
  check "pad 2" 2 (Xdr.padding 2);
  check "pad 3" 1 (Xdr.padding 3);
  check "pad 4" 0 (Xdr.padding 4);
  check "padded 5" 8 (Xdr.padded 5)

let test_xdr_int_encodings () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int32 enc (-1);
  check_s "minus one is all ones" "\xff\xff\xff\xff" (Xdr.Enc.contents enc);
  let enc2 = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc2 0xDEADBEEF;
  check_s "uint32 big endian" "\xde\xad\xbe\xef" (Xdr.Enc.contents enc2)

let test_xdr_opaque_padding () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.opaque enc "abcde";
  let s = Xdr.Enc.contents enc in
  check "length word + 5 bytes + 3 pad" 12 (String.length s);
  check_s "payload" "abcde" (String.sub s 4 5);
  check_s "zero padding" "\000\000\000" (String.sub s 9 3)

let test_xdr_decode_roundtrip () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int32 enc (-42);
  Xdr.Enc.uint32 enc 42;
  Xdr.Enc.hyper enc (-1L);
  Xdr.Enc.bool enc true;
  Xdr.Enc.opaque enc "xyz";
  Xdr.Enc.fixed_opaque enc "ab";
  let dec = Xdr.Dec.of_string (Xdr.Enc.contents enc) in
  check "int32" (-42) (Xdr.Dec.int32 dec);
  check "uint32" 42 (Xdr.Dec.uint32 dec);
  Alcotest.(check int64) "hyper" (-1L) (Xdr.Dec.hyper dec);
  checkb "bool" true (Xdr.Dec.bool dec);
  check_s "opaque" "xyz" (Xdr.Dec.opaque dec);
  check_s "fixed" "ab" (Xdr.Dec.fixed_opaque dec 2);
  Xdr.Dec.expect_end dec

let expect_dec_error f =
  match f () with
  | _ -> Alcotest.fail "expected Xdr.Dec.Error"
  | exception Xdr.Dec.Error _ -> ()

let test_xdr_decode_errors () =
  expect_dec_error (fun () -> Xdr.Dec.uint32 (Xdr.Dec.of_string "ab"));
  expect_dec_error (fun () -> Xdr.Dec.bool (Xdr.Dec.of_string "\000\000\000\002"));
  (* Nonzero padding is rejected. *)
  expect_dec_error (fun () ->
      Xdr.Dec.opaque (Xdr.Dec.of_string "\000\000\000\001aXYZ"));
  expect_dec_error (fun () -> Xdr.Dec.expect_end (Xdr.Dec.of_string "left"));
  (* An absurd opaque length must not crash or allocate wildly. *)
  expect_dec_error (fun () -> Xdr.Dec.opaque (Xdr.Dec.of_string "\xff\xff\xff\xff"))

let test_xdr_enc_range_checks () =
  let enc = Xdr.Enc.create () in
  (match Xdr.Enc.uint32 enc (-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Xdr.Enc.int32 enc 0x1_0000_0000 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* ASN.1 checking *)

let sample_ty : Asn1.ty =
  Seq
    [ ("kind", Enum [| "a"; "b" |]);
      ("count", Int);
      ("tag", Fixed_opaque 3);
      ("items", Seq_of Str);
      ("extra", Option Bool) ]

let sample_value : Asn1.value =
  VSeq
    [ VEnum 1;
      VInt (-7);
      VBytes "xyz";
      VList [ VStr "one"; VStr "two" ];
      VSome (VBool false) ]

let test_asn1_check_ok () =
  (match Asn1.check sample_ty sample_value with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checkb "equal reflexive" true (Asn1.equal sample_value sample_value)

let test_asn1_check_failures () =
  let bad cases =
    List.iter
      (fun (name, ty, v) ->
        match Asn1.check ty v with
        | Ok () -> Alcotest.failf "%s: expected rejection" name
        | Error _ -> ())
      cases
  in
  bad
    [ ("enum range", Asn1.Enum [| "x" |], Asn1.VEnum 1);
      ("int range", Asn1.Int, Asn1.VInt 0x1_0000_0000);
      ("uint negative", Asn1.Uint, Asn1.VInt (-1));
      ("fixed length", Asn1.Fixed_opaque 2, Asn1.VBytes "abc");
      ("wrong constructor", Asn1.Bool, Asn1.VInt 0);
      ( "field count",
        Asn1.Seq [ ("a", Asn1.Int) ],
        Asn1.VSeq [ Asn1.VInt 1; Asn1.VInt 2 ] );
      ("choice arm", Asn1.Choice [| ("a", Asn1.Int) |], Asn1.VChoice (3, Asn1.VInt 0)) ]

(* ------------------------------------------------------------------ *)
(* Stub compiler: fixed and random round trips *)

let test_stub_roundtrip_sample () =
  let stub = Stub.compile sample_ty in
  let wire = Stub.marshal stub sample_value in
  check "size agrees" (String.length wire) (Stub.size stub sample_value);
  checkb "round trip" true (Asn1.equal sample_value (Stub.unmarshal stub wire))

let test_stub_rejects_ill_typed () =
  let stub = Stub.compile Asn1.Int in
  match Stub.marshal stub (Asn1.VBool true) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_stub_choice_and_option () =
  let ty = Asn1.Choice [| ("num", Asn1.Int); ("txt", Asn1.Str) |] in
  let stub = Stub.compile ty in
  List.iter
    (fun v ->
      checkb "choice round trip" true
        (Asn1.equal v (Stub.unmarshal stub (Stub.marshal stub v))))
    [ Asn1.VChoice (0, Asn1.VInt 9); Asn1.VChoice (1, Asn1.VStr "hi") ];
  let ostub = Stub.compile (Asn1.Option Asn1.Hyper) in
  List.iter
    (fun v ->
      checkb "option round trip" true
        (Asn1.equal v (Stub.unmarshal ostub (Stub.marshal ostub v))))
    [ Asn1.VNone; Asn1.VSome (Asn1.VHyper 77L) ]

(* Random type + matching value generator. *)
let rec gen_ty depth : Asn1.ty QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneofl
      [ Asn1.Int; Asn1.Uint; Asn1.Hyper; Asn1.Bool;
        Asn1.Enum [| "a"; "b"; "c" |]; Asn1.Fixed_opaque 5; Asn1.Opaque; Asn1.Str ]
  in
  if depth = 0 then leaf
  else
    frequency
      [ (3, leaf);
        ( 1,
          int_range 1 3 >>= fun n ->
          list_repeat n (gen_ty (depth - 1)) >>= fun tys ->
          return (Asn1.Seq (List.mapi (fun i t -> (Printf.sprintf "f%d" i, t)) tys)) );
        (1, map (fun t -> Asn1.Seq_of t) (gen_ty (depth - 1)));
        ( 1,
          gen_ty (depth - 1) >>= fun a ->
          gen_ty (depth - 1) >>= fun b ->
          return (Asn1.Choice [| ("l", a); ("r", b) |]) );
        (1, map (fun t -> Asn1.Option t) (gen_ty (depth - 1))) ]

let rec gen_value (ty : Asn1.ty) : Asn1.value QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | Asn1.Int -> map (fun n -> Asn1.VInt n) (int_range (-0x8000_0000) 0x7fff_ffff)
  | Asn1.Uint -> map (fun n -> Asn1.VInt n) (int_bound 0xffff_ffff)
  | Asn1.Hyper -> map (fun n -> Asn1.VHyper (Int64.of_int n)) int
  | Asn1.Bool -> map (fun b -> Asn1.VBool b) bool
  | Asn1.Enum names -> map (fun i -> Asn1.VEnum i) (int_bound (Array.length names - 1))
  | Asn1.Fixed_opaque n -> map (fun s -> Asn1.VBytes s) (string_size (return n))
  | Asn1.Opaque -> map (fun s -> Asn1.VBytes s) (string_size (int_bound 12))
  | Asn1.Str -> map (fun s -> Asn1.VStr s) (string_size (int_bound 12))
  | Asn1.Seq fields ->
      let rec go = function
        | [] -> return []
        | (_, fty) :: rest ->
            gen_value fty >>= fun v ->
            go rest >>= fun vs -> return (v :: vs)
      in
      map (fun vs -> Asn1.VSeq vs) (go fields)
  | Asn1.Seq_of ety ->
      int_bound 4 >>= fun n -> map (fun vs -> Asn1.VList vs) (list_repeat n (gen_value ety))
  | Asn1.Choice arms ->
      int_bound (Array.length arms - 1) >>= fun i ->
      map (fun v -> Asn1.VChoice (i, v)) (gen_value (snd arms.(i)))
  | Asn1.Option ety ->
      bool >>= fun some ->
      if some then map (fun v -> Asn1.VSome v) (gen_value ety) else return Asn1.VNone

let gen_typed_value =
  QCheck.Gen.(gen_ty 2 >>= fun ty -> gen_value ty >>= fun v -> return (ty, v))

let arbitrary_typed =
  QCheck.make gen_typed_value ~print:(fun (ty, v) ->
      Format.asprintf "%a / %a" Asn1.pp_ty ty Asn1.pp_value v)

let prop_stub_roundtrip =
  QCheck.Test.make ~count:300 ~name:"marshal/unmarshal = id for random typed values"
    arbitrary_typed
    (fun (ty, v) ->
      let stub = Stub.compile ty in
      let wire = Stub.marshal stub v in
      String.length wire mod 4 = 0
      && String.length wire = Stub.size stub v
      && Asn1.equal v (Stub.unmarshal stub wire))

let prop_stub_garbage_safe =
  QCheck.Test.make ~count:300 ~name:"random bytes never crash the decoder"
    QCheck.(pair arbitrary_typed (string_of_size Gen.(int_bound 40)))
    (fun ((ty, _), junk) ->
      let stub = Stub.compile ty in
      match Stub.unmarshal stub junk with
      | _ -> true
      | exception Xdr.Dec.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* The ILP-extended stub compiler *)

let install sim str =
  let addr =
    Ilp_memsim.Alloc.alloc sim.Ilp_memsim.Sim.alloc ~align:8
      (max 1 (String.length str))
  in
  Ilp_memsim.Mem.poke_string sim.Ilp_memsim.Sim.mem ~pos:addr str;
  addr

let message_ty : Asn1.ty =
  Seq [ ("kind", Enum [| "data"; "ctl" |]); ("offset", Int); ("body", Opaque) ]

let test_stub_ilp_matches_plain_marshal () =
  (* The compiled layout, flattened, must equal the plain stub's output
     for the same logical value. *)
  let sim = Ilp_memsim.Sim.create (Ilp_memsim.Config.custom ()) in
  let payload = "seventeen bytes!!" in
  let addr = install sim payload in
  let ilp = Stub_ilp.compile message_ty in
  match
    Stub_ilp.layout ilp
      [ Stub_ilp.Immediate (Asn1.VEnum 0);
        Stub_ilp.Immediate (Asn1.VInt 4096);
        Stub_ilp.From_memory { addr; len = String.length payload } ]
  with
  | Error e -> Alcotest.fail e
  | Ok segs ->
      let plain =
        Stub.marshal (Stub.compile message_ty)
          (Asn1.VSeq [ Asn1.VEnum 0; Asn1.VInt 4096; Asn1.VBytes payload ])
      in
      Alcotest.(check string)
        "flattened layout = plain marshal" plain
        (Stub_ilp.flatten sim.Ilp_memsim.Sim.mem segs);
      Alcotest.(check int) "total_len" (String.length plain) (Stub_ilp.total_len segs);
      (* The payload run must be an App segment, not copied into Gen. *)
      checkb "payload stays in memory" true
        (List.exists
           (function Stub_ilp.App { addr = a; _ } -> a = addr | _ -> false)
           segs)

let test_stub_ilp_multiple_memory_fields () =
  let ty : Asn1.ty = Seq [ ("a", Opaque); ("sep", Int); ("b", Opaque) ] in
  let sim = Ilp_memsim.Sim.create (Ilp_memsim.Config.custom ()) in
  let a = install sim "first-region" and b = install sim "second" in
  let ilp = Stub_ilp.compile ty in
  match
    Stub_ilp.layout ilp
      [ Stub_ilp.From_memory { addr = a; len = 12 };
        Stub_ilp.Immediate (Asn1.VInt 7);
        Stub_ilp.From_memory { addr = b; len = 6 } ]
  with
  | Error e -> Alcotest.fail e
  | Ok segs ->
      let plain =
        Stub.marshal (Stub.compile ty)
          (Asn1.VSeq [ Asn1.VBytes "first-region"; Asn1.VInt 7; Asn1.VBytes "second" ])
      in
      Alcotest.(check string)
        "two memory fields" plain
        (Stub_ilp.flatten sim.Ilp_memsim.Sim.mem segs);
      check "two App segments" 2
        (List.length (List.filter (function Stub_ilp.App _ -> true | _ -> false) segs))

let test_stub_ilp_fixed_opaque_from_memory () =
  let ty : Asn1.ty = Seq [ ("tag", Fixed_opaque 6); ("n", Int) ] in
  let sim = Ilp_memsim.Sim.create (Ilp_memsim.Config.custom ()) in
  let addr6 = install sim "sixbyt" in
  let ilp = Stub_ilp.compile ty in
  (match
     Stub_ilp.layout ilp
       [ Stub_ilp.From_memory { addr = addr6; len = 6 };
         Stub_ilp.Immediate (Asn1.VInt 1) ]
   with
  | Ok segs ->
      let plain =
        Stub.marshal (Stub.compile ty)
          (Asn1.VSeq [ Asn1.VBytes "sixbyt"; Asn1.VInt 1 ])
      in
      Alcotest.(check string)
        "fixed opaque from memory" plain
        (Stub_ilp.flatten sim.Ilp_memsim.Sim.mem segs)
  | Error e -> Alcotest.fail e);
  (* Length mismatch is rejected. *)
  match
    Stub_ilp.layout ilp
      [ Stub_ilp.From_memory { addr = addr6; len = 5 };
        Stub_ilp.Immediate (Asn1.VInt 1) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong fixed length accepted"

let test_stub_ilp_errors () =
  let ilp = Stub_ilp.compile message_ty in
  (match Stub_ilp.layout ilp [ Stub_ilp.Immediate (Asn1.VEnum 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing sources accepted");
  (match
     Stub_ilp.layout ilp
       [ Stub_ilp.From_memory { addr = 0; len = 4 };
         Stub_ilp.Immediate (Asn1.VInt 0);
         Stub_ilp.Immediate (Asn1.VBytes "") ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "From_memory for an enum accepted");
  (match
     Stub_ilp.layout ilp
       [ Stub_ilp.Immediate (Asn1.VEnum 0);
         Stub_ilp.Immediate (Asn1.VBool true);
         Stub_ilp.Immediate (Asn1.VBytes "") ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-typed immediate accepted");
  match
    Stub_ilp.layout ilp
      [ Stub_ilp.Immediate (Asn1.VEnum 0);
        Stub_ilp.Immediate (Asn1.VInt 0);
        Stub_ilp.Immediate (Asn1.VBytes "");
        Stub_ilp.Immediate (Asn1.VInt 9) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extra sources accepted"

let prop_stub_ilp_equals_plain =
  QCheck.Test.make ~count:150
    ~name:"compiled layout flattens to the plain stub's encoding"
    QCheck.(
      triple (string_of_size Gen.(int_bound 40)) (int_bound 1000)
        (string_of_size Gen.(int_bound 15)))
    (fun (payload, n, tag) ->
      let ty : Asn1.ty = Seq [ ("tag", Str); ("n", Int); ("body", Opaque) ] in
      let sim = Ilp_memsim.Sim.create (Ilp_memsim.Config.custom ()) in
      let addr = install sim payload in
      match
        Stub_ilp.layout (Stub_ilp.compile ty)
          [ Stub_ilp.Immediate (Asn1.VStr tag);
            Stub_ilp.Immediate (Asn1.VInt n);
            Stub_ilp.From_memory { addr; len = String.length payload } ]
      with
      | Error _ -> false
      | Ok segs ->
          Stub_ilp.flatten sim.Ilp_memsim.Sim.mem segs
          = Stub.marshal (Stub.compile ty)
              (Asn1.VSeq [ Asn1.VStr tag; Asn1.VInt n; Asn1.VBytes payload ]))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "codec"
    [ ( "xdr",
        [ Alcotest.test_case "padding" `Quick test_padding;
          Alcotest.test_case "int encodings" `Quick test_xdr_int_encodings;
          Alcotest.test_case "opaque padding" `Quick test_xdr_opaque_padding;
          Alcotest.test_case "decode round trip" `Quick test_xdr_decode_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_xdr_decode_errors;
          Alcotest.test_case "encode range checks" `Quick test_xdr_enc_range_checks ] );
      ( "asn1",
        [ Alcotest.test_case "well-typed" `Quick test_asn1_check_ok;
          Alcotest.test_case "ill-typed" `Quick test_asn1_check_failures ] );
      ( "stub",
        [ Alcotest.test_case "sample round trip" `Quick test_stub_roundtrip_sample;
          Alcotest.test_case "rejects ill-typed" `Quick test_stub_rejects_ill_typed;
          Alcotest.test_case "choice and option" `Quick test_stub_choice_and_option;
          qc prop_stub_roundtrip;
          qc prop_stub_garbage_safe ] );
      ( "stub_ilp",
        [ Alcotest.test_case "matches plain marshal" `Quick
            test_stub_ilp_matches_plain_marshal;
          Alcotest.test_case "multiple memory fields" `Quick
            test_stub_ilp_multiple_memory_fields;
          Alcotest.test_case "fixed opaque from memory" `Quick
            test_stub_ilp_fixed_opaque_from_memory;
          Alcotest.test_case "errors" `Quick test_stub_ilp_errors;
          qc prop_stub_ilp_equals_plain ] ) ]
