(* Tests for the Internet checksum, CRC-32 and Fletcher-32. *)

open Ilp_checksum
module Sim = Ilp_memsim.Sim
module Mem = Ilp_memsim.Mem
module Alloc = Ilp_memsim.Alloc
module Config = Ilp_memsim.Config

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Independent one's-complement reference, written differently from the
   production code (full-width sum, single fold at the end). *)
let reference s =
  let sum = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Char.code s.[!i] lsl 8) + Char.code s.[!i + 1];
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code s.[n - 1] lsl 8);
  while !sum > 0xffff do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let test_internet_rfc_example () =
  (* Worked example from RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7
     sum to ddf2 before complement. *)
  let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check "rfc1071" (lnot 0xddf2 land 0xffff) (Internet.checksum_string data)

let test_internet_empty_and_zero () =
  check "empty" 0xffff (Internet.checksum_string "");
  check "zeros" 0xffff (Internet.checksum_string (String.make 10 '\000'))

let test_internet_odd_length () =
  check "single byte" (reference "a") (Internet.checksum_string "a");
  check "three bytes" (reference "abc") (Internet.checksum_string "abc")

let test_internet_verify () =
  let data = "some packet data!" in
  let ck = Internet.checksum_string data in
  (* Appending the checksum makes the whole thing verify (even length). *)
  let padded = if String.length data land 1 = 1 then data ^ "\000" else data in
  let with_ck =
    padded ^ String.init 2 (fun i -> Char.chr ((ck lsr ((1 - i) * 8)) land 0xff))
  in
  checkb "verifies" true (Internet.verify_string with_ck);
  let corrupted = "Xome packet data!" in
  let bad =
    (if String.length corrupted land 1 = 1 then corrupted ^ "\000" else corrupted)
    ^ String.init 2 (fun i -> Char.chr ((ck lsr ((1 - i) * 8)) land 0xff))
  in
  checkb "detects corruption" false (Internet.verify_string bad)

let test_internet_add_u16 () =
  let acc = Internet.add_u16 Internet.empty 0x1234 in
  let acc = Internet.add_u16 acc 0x5678 in
  check "same as bytes" (Internet.checksum_string "\x12\x34\x56\x78")
    (Internet.finish acc)

let prop_matches_reference =
  QCheck.Test.make ~count:300 ~name:"checksum matches an independent reference"
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s -> Internet.checksum_string s = reference s)

let prop_split_combine =
  QCheck.Test.make ~count:300 ~name:"combine over any split equals the whole"
    QCheck.(pair (string_of_size Gen.(int_range 0 64)) small_nat)
    (fun (s, k) ->
      let n = String.length s in
      let cut = if n = 0 then 0 else k mod (n + 1) in
      let a = String.sub s 0 cut and b = String.sub s cut (n - cut) in
      let acc_a = Internet.add_string Internet.empty a in
      let acc_b = Internet.add_string Internet.empty b in
      let combined = Internet.combine acc_a acc_b ~len_b:(String.length b) in
      Internet.finish combined = Internet.checksum_string s)

let prop_incremental_equals_whole =
  QCheck.Test.make ~count:200 ~name:"folding chunk by chunk equals one shot"
    QCheck.(list_of_size Gen.(int_range 0 10) (string_of_size Gen.(int_range 0 17)))
    (fun chunks ->
      let whole = String.concat "" chunks in
      let acc =
        List.fold_left (fun acc c -> Internet.add_string acc c) Internet.empty chunks
      in
      Internet.finish acc = Internet.checksum_string whole)

(* The word-folded unsafe variant must agree with the byte-at-a-time
   reference at every offset/length, including when the accumulator
   resumes at odd parity. *)
let prop_unsafe_random_slices =
  QCheck.Test.make ~count:500 ~name:"add_bytes_unsafe matches reference on slices"
    QCheck.(triple (string_of_size Gen.(int_range 0 200)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let off = if n = 0 then 0 else a mod (n + 1) in
      let len = if n - off = 0 then 0 else b mod (n - off + 1) in
      let bytes = Bytes.of_string s in
      let acc = Internet.add_bytes_unsafe Internet.empty bytes ~off ~len in
      Internet.finish acc = reference (String.sub s off len))

let prop_unsafe_odd_parity_resume =
  QCheck.Test.make ~count:500
    ~name:"add_bytes_unsafe resumes correctly from odd parity"
    QCheck.(pair (string_of_size Gen.(int_range 1 64))
              (string_of_size Gen.(int_range 0 100)))
    (fun (prefix, rest) ->
      (* Force an odd-parity accumulator by folding an odd-length prefix. *)
      let prefix =
        if String.length prefix land 1 = 0 then String.sub prefix 0 (String.length prefix - 1)
        else prefix
      in
      let acc = Internet.add_string Internet.empty prefix in
      let acc =
        Internet.add_bytes_unsafe acc (Bytes.of_string rest) ~off:0
          ~len:(String.length rest)
      in
      Internet.finish acc = reference (prefix ^ rest))

let prop_unsafe_long_runs =
  QCheck.Test.make ~count:50 ~name:"add_bytes_unsafe on multi-word runs"
    QCheck.(pair (int_range 0 1024) (int_range 0 255))
    (fun (len, seedb) ->
      let bytes = Bytes.init len (fun i -> Char.chr ((seedb + (i * 131)) land 0xff)) in
      let whole = Internet.add_bytes_unsafe Internet.empty bytes ~off:0 ~len in
      Internet.finish whole = reference (Bytes.to_string bytes))

let prop_checksum_mem_matches =
  QCheck.Test.make ~count:100 ~name:"charged checksum_mem equals the pure checksum"
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      let sim = Sim.create (Config.custom ()) in
      Mem.poke_string sim.Sim.mem ~pos:128 s;
      let acc =
        Internet.checksum_mem sim.Sim.mem ~pos:128 ~len:(String.length s)
          ~acc:Internet.empty
      in
      Internet.finish acc = Internet.checksum_string s)

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc_standard_vector () =
  (* The universal CRC-32 check value. *)
  check "123456789" 0xCBF43926 (Crc32.string_crc "123456789")

let test_crc_empty () = check "empty" 0 (Crc32.string_crc "")

let charged_crc () =
  let sim = Sim.create (Config.custom ()) in
  (Crc32.create sim.Sim.mem sim.Sim.alloc, sim)

let test_crc_charged_matches () =
  let crc, sim = charged_crc () in
  let s = "the quick brown fox" in
  Mem.poke_string sim.Sim.mem ~pos:2048 s;
  let v = Crc32.update_mem crc ~crc:Crc32.init sim.Sim.mem ~pos:2048 ~len:(String.length s) in
  check "charged = pure" (Crc32.string_crc s) (Crc32.finish v);
  checkb "table reads charged" true
    (Ilp_memsim.Stats.accesses (Ilp_memsim.Machine.stats sim.Sim.machine)
       Ilp_memsim.Stats.Read
    > 0)

let prop_crc_block_incremental =
  QCheck.Test.make ~count:100 ~name:"CRC over split blocks equals whole (ordering)"
    QCheck.(pair (string_of_size Gen.(int_range 0 40)) small_nat)
    (fun (s, k) ->
      let crc, _sim = charged_crc () in
      let n = String.length s in
      let cut = if n = 0 then 0 else k mod (n + 1) in
      let b = Bytes.of_string s in
      let c1 = Crc32.update_block crc ~crc:Crc32.init b ~off:0 ~len:cut in
      let c2 = Crc32.update_block crc ~crc:c1 b ~off:cut ~len:(n - cut) in
      Crc32.finish c2 = Crc32.string_crc s)

(* ------------------------------------------------------------------ *)
(* Fletcher-32 *)

let test_fletcher_known_relations () =
  checkb "nonzero on data" true (Fletcher.string_sum "abcde" <> 0);
  check "empty" 0 (Fletcher.string_sum "");
  checkb "order sensitive" true
    (Fletcher.string_sum "ab" <> Fletcher.string_sum "ba")

let prop_fletcher_incremental =
  QCheck.Test.make ~count:200 ~name:"fletcher chunked equals whole"
    QCheck.(pair (string_of_size Gen.(int_range 0 64)) small_nat)
    (fun (s, k) ->
      let n = String.length s in
      let cut = if n = 0 then 0 else k mod (n + 1) in
      let b = Bytes.of_string s in
      let s1, s2 = Fletcher.update ~s1:0 ~s2:0 b ~off:0 ~len:cut in
      let st = Fletcher.update ~s1 ~s2 b ~off:cut ~len:(n - cut) in
      Fletcher.finish st = Fletcher.string_sum s)

let prop_fletcher_detects_single_flip =
  QCheck.Test.make ~count:200 ~name:"fletcher detects a single byte change"
    QCheck.(pair (string_of_size Gen.(int_range 1 40)) small_nat)
    (fun (s, k) ->
      let i = k mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      Fletcher.string_sum s <> Fletcher.string_sum (Bytes.to_string b))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "checksum"
    [ ( "internet",
        [ Alcotest.test_case "rfc example" `Quick test_internet_rfc_example;
          Alcotest.test_case "empty and zeros" `Quick test_internet_empty_and_zero;
          Alcotest.test_case "odd length" `Quick test_internet_odd_length;
          Alcotest.test_case "verify" `Quick test_internet_verify;
          Alcotest.test_case "add_u16" `Quick test_internet_add_u16;
          qc prop_matches_reference;
          qc prop_split_combine;
          qc prop_incremental_equals_whole;
          qc prop_unsafe_random_slices;
          qc prop_unsafe_odd_parity_resume;
          qc prop_unsafe_long_runs;
          qc prop_checksum_mem_matches ] );
      ( "crc32",
        [ Alcotest.test_case "standard vector" `Quick test_crc_standard_vector;
          Alcotest.test_case "empty" `Quick test_crc_empty;
          Alcotest.test_case "charged matches pure" `Quick test_crc_charged_matches;
          qc prop_crc_block_incremental ] );
      ( "fletcher",
        [ Alcotest.test_case "relations" `Quick test_fletcher_known_relations;
          qc prop_fletcher_incremental;
          qc prop_fletcher_detects_single_flip ] ) ]
