(* Cipher tests: published vectors, inverse properties, charged-vs-pure
   agreement, and avalanche sanity. *)

open Ilp_cipher
module Sim = Ilp_memsim.Sim
module Config = Ilp_memsim.Config
module Machine = Ilp_memsim.Machine
module Stats = Ilp_memsim.Stats

let check_s = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let hex s =
  String.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let bits_differing a b =
  let count = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code b.[i] in
      for bit = 0 to 7 do
        if (x lsr bit) land 1 = 1 then incr count
      done)
    a;
  !count

let key8 = QCheck.(string_of_size (Gen.return 8))
let block8 = QCheck.(string_of_size (Gen.return 8))

(* ------------------------------------------------------------------ *)
(* DES *)

let test_des_fips_vector () =
  (* The classic FIPS worked example. *)
  let key = Des.expand_key (hex "133457799BBCDFF1") in
  check_s "encrypt" "85e813540f0ab405"
    (to_hex (Des.encrypt_string key (hex "0123456789ABCDEF")));
  check_s "decrypt" "0123456789abcdef"
    (to_hex (Des.decrypt_string key (hex "85E813540F0AB405")))

let test_des_known_weakish_key () =
  (* All-zero key, all-zero plaintext: standard reference value. *)
  let key = Des.expand_key (String.make 8 '\000') in
  check_s "zero/zero" "8ca64de9c1b123a7"
    (to_hex (Des.encrypt_string key (String.make 8 '\000')))

let prop_des_roundtrip =
  QCheck.Test.make ~count:150 ~name:"DES decrypt ∘ encrypt = id"
    QCheck.(pair key8 block8)
    (fun (k, p) ->
      let key = Des.expand_key k in
      Des.decrypt_string key (Des.encrypt_string key p) = p)

let test_des_charged_matches_pure () =
  let sim = Sim.create (Config.custom ()) in
  let c = Des.charged sim ~key:(hex "133457799BBCDFF1") () in
  let ct = Block_cipher.encrypt_string c (hex "0123456789ABCDEF") in
  check_s "charged = published" "85e813540f0ab405" (to_hex ct);
  checkb "roundtrip_ok" true (Block_cipher.roundtrip_ok c);
  checkb "sbox reads charged" true
    (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Read > 0)

let test_des_bad_key_length () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Des.expand_key: key must be 8 bytes") (fun () ->
      ignore (Des.expand_key "short"))

(* ------------------------------------------------------------------ *)
(* SAFER K-64 *)

let test_safer_published_vector () =
  (* Massey's test vector: key (8,7,...,1), plaintext (1,2,...,8),
     6 rounds. *)
  let key = Safer.expand_key "\008\007\006\005\004\003\002\001" in
  check_s "encrypt" "c8f29cdd87783ed9"
    (to_hex (Safer.encrypt_string key "\001\002\003\004\005\006\007\008"));
  check_s "decrypt" "0102030405060708"
    (to_hex (Safer.decrypt_string key (hex "c8f29cdd87783ed9")))

let test_safer_tables () =
  check "exp 0" 1 Safer.exp_table.(0);
  check "exp 128 encodes 256" 0 Safer.exp_table.(128);
  check "log 1" 0 Safer.log_table.(1);
  check "log 0" 128 Safer.log_table.(0);
  (* The tables are mutually inverse bijections. *)
  for i = 0 to 255 do
    if Safer.log_table.(Safer.exp_table.(i)) <> i then
      Alcotest.failf "log(exp %d) <> %d" i i
  done

let prop_safer_roundtrip =
  QCheck.Test.make ~count:150 ~name:"SAFER decrypt ∘ encrypt = id (6 rounds)"
    QCheck.(pair key8 block8)
    (fun (k, p) ->
      let key = Safer.expand_key k in
      Safer.decrypt_string key (Safer.encrypt_string key p) = p)

let prop_safer_roundtrip_rounds =
  QCheck.Test.make ~count:60 ~name:"SAFER round trip for 1..10 rounds"
    QCheck.(triple (int_range 1 10) key8 block8)
    (fun (rounds, k, p) ->
      let key = Safer.expand_key ~rounds k in
      Safer.decrypt_string key (Safer.encrypt_string key p) = p)

let test_safer_avalanche () =
  let key = Safer.expand_key "\008\007\006\005\004\003\002\001" in
  let p1 = "\001\002\003\004\005\006\007\008" in
  let p2 = "\000\002\003\004\005\006\007\008" in
  let d = bits_differing (Safer.encrypt_string key p1) (Safer.encrypt_string key p2) in
  checkb "one flipped input bit changes many output bits" true (d >= 16)

let test_safer_charged_matches_pure () =
  let sim = Sim.create (Config.custom ()) in
  let c = Safer.charged sim ~key:"\008\007\006\005\004\003\002\001" () in
  check_s "charged = published" "c8f29cdd87783ed9"
    (to_hex (Block_cipher.encrypt_string c "\001\002\003\004\005\006\007\008"));
  checkb "roundtrip_ok" true (Block_cipher.roundtrip_ok c)

let test_safer_validation () =
  Alcotest.check_raises "rounds range"
    (Invalid_argument "Safer.expand_key: rounds") (fun () ->
      ignore (Safer.expand_key ~rounds:0 "12345678"));
  Alcotest.check_raises "key length"
    (Invalid_argument "Safer.expand_key: key must be 8 bytes") (fun () ->
      ignore (Safer.expand_key "123"))

(* ------------------------------------------------------------------ *)
(* Simplified SAFER *)

let prop_simplified_roundtrip =
  QCheck.Test.make ~count:200 ~name:"simplified SAFER decrypt ∘ encrypt = id"
    QCheck.(pair key8 block8)
    (fun (k, p) ->
      let key = Safer_simplified.expand_key k in
      Safer_simplified.decrypt_string key (Safer_simplified.encrypt_string key p) = p)

let test_simplified_charged_matches_pure () =
  let sim = Sim.create (Config.custom ()) in
  let key = "\x11\x22\x33\x44\x55\x66\x77\x88" in
  let c = Safer_simplified.charged sim ~key () in
  let pure = Safer_simplified.expand_key key in
  let pt = "blockdat" in
  check_s "charged encrypt = pure"
    (to_hex (Safer_simplified.encrypt_string pure pt))
    (to_hex (Block_cipher.encrypt_string c pt));
  checkb "roundtrip_ok (with decrypt spill)" true (Block_cipher.roundtrip_ok c)

let test_simplified_actually_encrypts () =
  let key = Safer_simplified.expand_key "\x11\x22\x33\x44\x55\x66\x77\x88" in
  checkb "not identity" true
    (Safer_simplified.encrypt_string key "AAAAAAAA" <> "AAAAAAAA")

let test_simplified_charged_traffic () =
  (* One block costs key-vector and table reads: the byte-vector-per-byte
     characteristic the paper's cache analysis hinges on. *)
  let sim = Sim.create (Config.custom ()) in
  let c = Safer_simplified.charged sim ~key:"\x11\x22\x33\x44\x55\x66\x77\x88" () in
  let b = Bytes.of_string "12345678" in
  Machine.reset_counters sim.Sim.machine;
  c.Block_cipher.encrypt b 0;
  let reads = Stats.accesses_of_size (Machine.stats sim.Sim.machine) Stats.Read ~size:1 in
  check "16 one-byte reads per block (8 key + 8 table)" 16 reads

(* ------------------------------------------------------------------ *)
(* Simple cipher *)

let prop_simple_roundtrip =
  QCheck.Test.make ~count:200 ~name:"simple cipher decrypt ∘ encrypt = id"
    block8
    (fun p -> Simple_cipher.decrypt_string (Simple_cipher.encrypt_string p) = p)

let test_simple_no_table_traffic () =
  let sim = Sim.create (Config.custom ()) in
  let c = Simple_cipher.charged sim in
  let b = Bytes.of_string "12345678" in
  Machine.reset_counters sim.Sim.machine;
  c.Block_cipher.encrypt b 0;
  check "no data reads at all" 0 (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Read);
  checkb "but ALU work happened" true (Machine.cycles sim.Sim.machine > 0.0)

let test_store_units () =
  let sim = Sim.create (Config.custom ()) in
  check "SAFER stores bytes" 1
    (Safer.charged sim ~key:"12345678" ()).Block_cipher.store_unit;
  check "simplified stores bytes" 1
    (Safer_simplified.charged sim ~key:"12345678" ()).Block_cipher.store_unit;
  check "simple stores words" 4 (Simple_cipher.charged sim).Block_cipher.store_unit

(* ------------------------------------------------------------------ *)
(* Batch block APIs *)

let multi8 = QCheck.(string_of_size Gen.(map (fun n -> n * 8) (int_range 0 16)))

(* Every charged cipher's batch kernel must agree with looping its own
   per-block function; the Block_cipher dispatch must also agree when the
   batch fields are stripped (fallback path). *)
let prop_batch_matches_per_block =
  QCheck.Test.make ~count:80 ~name:"batch kernels = per-block loop (all ciphers)"
    QCheck.(pair key8 multi8)
    (fun (k, s) ->
      let sim = Sim.create (Config.custom ()) in
      let ciphers =
        [ Des.charged sim ~key:k ();
          Safer.charged sim ~key:k ();
          Safer_simplified.charged sim ~key:k ();
          Simple_cipher.charged sim ]
      in
      List.for_all
        (fun c ->
          let count = String.length s / 8 in
          let batch = Bytes.of_string s in
          Block_cipher.encrypt_blocks c batch ~off:0 ~count;
          let expected = Block_cipher.encrypt_string c s in
          let ok_enc = Bytes.to_string batch = expected in
          Block_cipher.decrypt_blocks c batch ~off:0 ~count;
          let ok_dec = Bytes.to_string batch = s in
          let fallback = { c with Block_cipher.encrypt_blocks = None; decrypt_blocks = None } in
          let fb = Bytes.of_string s in
          Block_cipher.encrypt_blocks fallback fb ~off:0 ~count;
          ok_enc && ok_dec && Bytes.to_string fb = expected)
        ciphers)

let prop_pure_batch_matches_string =
  QCheck.Test.make ~count:80 ~name:"pure batch kernels = ECB over string"
    QCheck.(pair key8 multi8)
    (fun (k, s) ->
      let count = String.length s / 8 in
      let check2 enc dec expected =
        let b = Bytes.of_string s in
        enc b;
        let ok = Bytes.to_string b = expected in
        dec b;
        ok && Bytes.to_string b = s
      in
      let dk = Des.expand_key k in
      let sk = Safer.expand_key k in
      let pk = Safer_simplified.expand_key k in
      check2
        (fun b -> Des.encrypt_blocks dk b ~off:0 ~count)
        (fun b -> Des.decrypt_blocks dk b ~off:0 ~count)
        (Des.encrypt_string dk s)
      && check2
           (fun b -> Safer.encrypt_blocks sk b ~off:0 ~count)
           (fun b -> Safer.decrypt_blocks sk b ~off:0 ~count)
           (Safer.encrypt_string sk s)
      && check2
           (fun b -> Safer_simplified.encrypt_blocks pk b ~off:0 ~count)
           (fun b -> Safer_simplified.decrypt_blocks pk b ~off:0 ~count)
           (Safer_simplified.encrypt_string pk s)
      && check2
           (fun b -> Simple_cipher.encrypt_blocks b ~off:0 ~count)
           (fun b -> Simple_cipher.decrypt_blocks b ~off:0 ~count)
           (Simple_cipher.encrypt_string s))

let test_batch_out_of_bounds () =
  let key = Safer_simplified.expand_key "12345678" in
  let b = Bytes.create 16 in
  (match Safer_simplified.encrypt_blocks key b ~off:0 ~count:3 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let sim = Sim.create (Config.custom ()) in
  let c = Simple_cipher.charged sim in
  match Block_cipher.encrypt_blocks c b ~off:9 ~count:1 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_block_cipher_bad_length () =
  let sim = Sim.create (Config.custom ()) in
  let c = Simple_cipher.charged sim in
  (match Block_cipher.encrypt_string c "123" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (match Safer.encrypt_string (Safer.expand_key "12345678") "123456789" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "cipher"
    [ ( "des",
        [ Alcotest.test_case "FIPS worked example" `Quick test_des_fips_vector;
          Alcotest.test_case "zero key vector" `Quick test_des_known_weakish_key;
          Alcotest.test_case "charged matches pure" `Quick test_des_charged_matches_pure;
          Alcotest.test_case "bad key" `Quick test_des_bad_key_length;
          qc prop_des_roundtrip ] );
      ( "safer",
        [ Alcotest.test_case "published vector" `Quick test_safer_published_vector;
          Alcotest.test_case "exp/log tables" `Quick test_safer_tables;
          Alcotest.test_case "avalanche" `Quick test_safer_avalanche;
          Alcotest.test_case "charged matches pure" `Quick
            test_safer_charged_matches_pure;
          Alcotest.test_case "validation" `Quick test_safer_validation;
          qc prop_safer_roundtrip;
          qc prop_safer_roundtrip_rounds ] );
      ( "simplified",
        [ Alcotest.test_case "charged matches pure" `Quick
            test_simplified_charged_matches_pure;
          Alcotest.test_case "actually encrypts" `Quick test_simplified_actually_encrypts;
          Alcotest.test_case "per-byte memory traffic" `Quick
            test_simplified_charged_traffic;
          qc prop_simplified_roundtrip ] );
      ( "simple",
        [ Alcotest.test_case "no table traffic" `Quick test_simple_no_table_traffic;
          Alcotest.test_case "store units" `Quick test_store_units;
          Alcotest.test_case "bad length" `Quick test_block_cipher_bad_length;
          qc prop_simple_roundtrip ] );
      ( "batch",
        [ Alcotest.test_case "out of bounds" `Quick test_batch_out_of_bounds;
          qc prop_batch_matches_per_block;
          qc prop_pure_batch_matches_string ] ) ]
