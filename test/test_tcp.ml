(* User-level TCP: header codec, ring buffer, RTO estimation, and
   end-to-end socket behaviour under loss, reordering, duplication and
   corruption. *)

open Ilp_memsim
module Simclock = Ilp_netsim.Simclock
module Link = Ilp_netsim.Link
module Demux = Ilp_netsim.Demux
module Datagram = Ilp_netsim.Datagram
open Ilp_tcp

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Header *)

let sample_header =
  Tcp_header.make ~seq:123456789 ~ack:987654321
    ~flags:(Tcp_header.ack_flag lor Tcp_header.psh)
    ~window:8192 ~checksum:0xBEEF ~urgent:7 ~src_port:1234 ~dst_port:80 ()

let test_header_string_roundtrip () =
  let s = Tcp_header.to_string sample_header in
  check "size" Tcp_header.size (String.length s);
  match Tcp_header.of_string s ~pos:0 with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok h -> checkb "round trip" true (h = sample_header)

let test_header_decode_bounds () =
  let s = Tcp_header.to_string sample_header in
  checkb "negative pos rejected" true
    (Result.is_error (Tcp_header.of_string s ~pos:(-1)));
  checkb "truncated buffer rejected" true
    (Result.is_error (Tcp_header.of_string s ~pos:1));
  checkb "runt rejected" true
    (Result.is_error (Tcp_header.of_string "short" ~pos:0));
  (match Tcp_header.of_string_exn s ~pos:0 with
  | h -> checkb "exn wrapper agrees" true (h = sample_header)
  | exception Invalid_argument _ -> Alcotest.fail "spurious raise");
  match Tcp_header.of_string_exn "short" ~pos:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_header_mem_roundtrip () =
  let sim = Sim.create (Config.custom ()) in
  Tcp_header.write_mem sim.Sim.mem ~pos:256 sample_header;
  let h = Tcp_header.read_mem sim.Sim.mem ~pos:256 in
  checkb "round trip through simulated memory" true (h = sample_header);
  checkb "header traffic was charged" true
    (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Write > 0)

let test_header_flags () =
  checkb "ack set" true (Tcp_header.has sample_header Tcp_header.ack_flag);
  checkb "psh set" true (Tcp_header.has sample_header Tcp_header.psh);
  checkb "syn clear" false (Tcp_header.has sample_header Tcp_header.syn)

let test_header_checksum_consistency () =
  (* The checksum computed over a payload verifies against a recomputation
     with the same parts. *)
  let payload = "hello, checksummed world" in
  let acc =
    Ilp_checksum.Internet.add_string Ilp_checksum.Internet.empty payload
  in
  let ck =
    Tcp_header.checksum sample_header ~payload_acc:acc
      ~payload_len:(String.length payload)
  in
  let ck2 =
    Tcp_header.checksum sample_header ~payload_acc:acc
      ~payload_len:(String.length payload)
  in
  check "deterministic" ck ck2;
  let acc' =
    Ilp_checksum.Internet.add_string Ilp_checksum.Internet.empty
      ("h" ^ String.sub payload 1 (String.length payload - 1))
  in
  check "same data same sum"
    (Tcp_header.checksum sample_header ~payload_acc:acc'
       ~payload_len:(String.length payload))
    ck;
  let corrupt =
    Ilp_checksum.Internet.add_string Ilp_checksum.Internet.empty
      ("X" ^ String.sub payload 1 (String.length payload - 1))
  in
  checkb "different data different sum" true
    (Tcp_header.checksum sample_header ~payload_acc:corrupt
       ~payload_len:(String.length payload)
    <> ck)

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_basic () =
  let sim = Sim.create (Config.custom ()) in
  let ring = Ring.create sim ~size:100 in
  check "initially empty" 100 (Ring.available ring);
  let a = Option.get (Ring.reserve ring 40) in
  let b = Option.get (Ring.reserve ring 40) in
  checkb "contiguous" true (b = a + 40);
  check "in flight" 2 (Ring.in_flight ring);
  checkb "no room for 40 more" true (Ring.reserve ring 40 = None);
  Ring.release_exn ring;
  check "released" 1 (Ring.in_flight ring);
  checkb "oldest is b" true (Ring.peek_oldest ring = Some (b, 40))

let test_ring_wrap_waste () =
  let sim = Sim.create (Config.custom ()) in
  let ring = Ring.create sim ~size:100 in
  let a = Option.get (Ring.reserve ring 60) in
  Ring.release_exn ring;
  (* Head is at 60; a 50-byte reservation cannot span the end, so the
     40-byte tail is wasted and the region starts at the base again. *)
  let b = Option.get (Ring.reserve ring 50) in
  checkb "wrapped to base" true (b = a);
  check "waste accounted" 10 (Ring.available ring);
  Ring.release_exn ring;
  check "waste freed with the entry" 100 (Ring.available ring)

let test_ring_reserve_too_big () =
  let sim = Sim.create (Config.custom ()) in
  let ring = Ring.create sim ~size:64 in
  checkb "over-size rejected" true (Ring.reserve ring 65 = None);
  checkb "zero rejected" true (Ring.reserve ring 0 = None)

let test_ring_release_empty () =
  let sim = Sim.create (Config.custom ()) in
  let ring = Ring.create sim ~size:64 in
  checkb "typed error" true (Ring.release ring = Error `Empty);
  (match Ring.release_exn ring with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  (* A release after a successful reserve works through both APIs. *)
  ignore (Option.get (Ring.reserve ring 8));
  checkb "ok when non-empty" true (Ring.release ring = Ok ())

let prop_ring_fifo =
  QCheck.Test.make ~count:100 ~name:"ring reservations release FIFO and restore space"
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 40))
    (fun lens ->
      let sim = Sim.create (Config.custom ()) in
      let ring = Ring.create sim ~size:128 in
      let ok = ref true in
      List.iter
        (fun len ->
          match Ring.reserve ring len with
          | Some addr ->
              ok := !ok && addr >= 0;
              (* Release at random-ish parity to exercise interleaving. *)
              if Ring.in_flight ring > 2 then Ring.release_exn ring
          | None ->
              if Ring.in_flight ring > 0 then Ring.release_exn ring)
        lens;
      while Ring.in_flight ring > 0 do
        Ring.release_exn ring
      done;
      !ok && Ring.available ring = 128)

(* ------------------------------------------------------------------ *)
(* RTO *)

let test_rto_defaults_and_sampling () =
  let r = Rto.create ~initial_us:1000.0 ~min_us:100.0 ~max_us:10_000.0 () in
  checkb "initial" true (Rto.timeout_us r = 1000.0);
  Rto.sample r 400.0;
  checkb "after sample, srtt known" true (Rto.srtt_us r = Some 400.0);
  let t = Rto.timeout_us r in
  checkb "timeout within clamps" true (t >= 100.0 && t <= 10_000.0)

let test_rto_backoff () =
  let r = Rto.create ~initial_us:1000.0 ~min_us:100.0 ~max_us:10_000.0 () in
  let t0 = Rto.timeout_us r in
  Rto.backoff r;
  let t1 = Rto.timeout_us r in
  checkb "doubles" true (t1 = 2.0 *. t0);
  Rto.backoff r;
  Rto.backoff r;
  Rto.backoff r;
  Rto.backoff r;
  checkb "clamped at max" true (Rto.timeout_us r <= 10_000.0);
  Rto.reset_backoff r;
  checkb "reset" true (Rto.timeout_us r = t0)

let test_rto_smoothing () =
  let r = Rto.create ~min_us:50.0 () in
  List.iter (fun v -> Rto.sample r v) [ 100.0; 100.0; 100.0; 100.0 ];
  let t = Rto.timeout_us r in
  (* srtt = 100, rttvar decays: timeout approaches min-bounded srtt. *)
  checkb "converges near srtt" true (t < 500.0 *. 2.0)

(* ------------------------------------------------------------------ *)
(* Socket integration *)

type world = {
  sim : Sim.t;
  clock : Simclock.t;
  a : Socket.t;
  b : Socket.t;
  link : Link.t;
}

let make_world ?(loss_rate = 0.0) ?(jitter_us = 0.0) ?(dup_rate = 0.0) ?(seed = 11)
    ?(mss = 1024) ?(ack_delay_us = 0.0) ?(congestion_control = true)
    ?(sack = Socket.default_config.Socket.sack)
    ?(send_buffer = Socket.default_config.Socket.send_buffer)
    ?(recv_window = Socket.default_config.Socket.recv_window)
    ?(ooo_slots = Socket.default_config.Socket.ooo_slots) ?(max_tsdu = 0)
    ?tamper ?(mangle = fun _ s -> s) () =
  let sim = Sim.create (Config.custom ()) in
  let clock = Simclock.create () in
  let demux = Demux.create () in
  let link_ref = ref None in
  let count = ref 0 in
  let wire_out d =
    incr count;
    let payload = mangle !count d.Datagram.payload in
    Link.send (Option.get !link_ref)
      (Datagram.create ~src_port:d.Datagram.src_port ~dst_port:d.Datagram.dst_port
         ~payload)
  in
  let cfg =
    { Socket.default_config with
      mss;
      ack_delay_us;
      congestion_control;
      sack;
      send_buffer;
      recv_window;
      ooo_slots;
      max_tsdu
    }
  in
  let a = Socket.create sim clock cfg ~local_port:100 ~wire_out in
  let b = Socket.create sim clock cfg ~local_port:200 ~wire_out in
  link_ref :=
    Some
      (Link.create clock ~delay_us:25.0 ~loss_rate ~jitter_us ~dup_rate ~seed
         ?tamper ~deliver:(Demux.deliver demux) ());
  Demux.bind demux ~port:100 (Socket.handle_datagram a);
  Demux.bind demux ~port:200 (Socket.handle_datagram b);
  { sim; clock; a; b; link = Option.get !link_ref }

let connect w =
  Socket.listen w.b;
  Socket.connect w.a ~remote_port:200;
  Simclock.run_until_idle w.clock

let collect_into w buf =
  Socket.set_on_message w.b (fun ~src ~len ->
      Buffer.add_bytes buf (Mem.peek_bytes w.sim.Sim.mem ~pos:src ~len))

(* Pump the world while pushing messages as buffer space allows.
   [burst_us] controls the pacing: large values ack each message before
   the next is sent, small values keep many segments in flight. *)
let transfer ?(burst_us = 1_000.0) w messages =
  let pending = Queue.of_seq (List.to_seq messages) in
  let guard = ref 100_000 in
  while (not (Queue.is_empty pending)) && !guard > 0 do
    decr guard;
    (match Queue.peek_opt pending with
    | None -> ()
    | Some payload -> (
        let fill m ~dst =
          Mem.poke_string m ~pos:dst payload;
          None
        in
        match Socket.send_message w.a ~len:(String.length payload) ~fill with
        | Ok () -> ignore (Queue.pop pending)
        | Error _ -> ()));
    Simclock.advance w.clock burst_us
  done;
  (* Let retransmissions finish. *)
  Simclock.run_until_idle w.clock

let test_handshake () =
  let w = make_world () in
  connect w;
  Alcotest.(check string)
    "a established" "ESTABLISHED"
    (Socket.state_to_string (Socket.state w.a));
  Alcotest.(check string)
    "b established" "ESTABLISHED"
    (Socket.state_to_string (Socket.state w.b))

let test_handshake_under_loss () =
  (* Seed chosen so that packets (including handshake ones) do drop. *)
  let w = make_world ~loss_rate:0.4 ~seed:5 () in
  connect w;
  checkb "a eventually established" true (Socket.state w.a = Socket.Established)

let test_simple_transfer () =
  let w = make_world () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  transfer w [ "hello"; "world"; String.make 1000 'x' ];
  Alcotest.(check string)
    "stream intact"
    ("helloworld" ^ String.make 1000 'x')
    (Buffer.contents got);
  check "no retransmissions" 0 (Socket.stats w.a).Socket.retransmissions

let test_transfer_under_loss () =
  let w = make_world ~loss_rate:0.2 ~seed:17 () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 40 (fun i -> String.make (50 + (i * 13 mod 500)) (Char.chr (65 + (i mod 26)))) in
  transfer w msgs;
  Alcotest.(check string) "stream intact" (String.concat "" msgs) (Buffer.contents got);
  checkb "retransmissions happened" true ((Socket.stats w.a).Socket.retransmissions > 0)

let test_transfer_with_reordering () =
  let w = make_world ~jitter_us:2500.0 ~seed:23 () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 30 (fun i -> Printf.sprintf "message-%02d-%s" i (String.make 40 '.')) in
  transfer w msgs;
  Alcotest.(check string) "stream intact" (String.concat "" msgs) (Buffer.contents got);
  checkb "out-of-order segments seen" true ((Socket.stats w.b).Socket.out_of_order > 0)

let test_transfer_with_duplication () =
  let w = make_world ~dup_rate:0.5 ~seed:31 () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 20 (fun i -> Printf.sprintf "%04d-payload" i) in
  transfer w msgs;
  Alcotest.(check string) "duplicates filtered" (String.concat "" msgs) (Buffer.contents got);
  checkb "duplicates seen" true ((Socket.stats w.b).Socket.duplicates > 0)

let test_corruption_detected_and_recovered () =
  (* Flip a payload byte of the 8th wire datagram once; TCP must drop it on
     checksum and recover by retransmission.  The payload sits behind the
     IP and TCP headers. *)
  let hdrs = Ilp_netsim.Ipv4.header_len + Tcp_header.size in
  let flipped = ref false in
  let mangle n s =
    if n = 8 && String.length s > hdrs + 2 && not !flipped then begin
      flipped := true;
      let b = Bytes.of_string s in
      Bytes.set b (hdrs + 1)
        (Char.chr (Char.code (Bytes.get b (hdrs + 1)) lxor 0xff));
      Bytes.to_string b
    end
    else s
  in
  let w = make_world ~mangle () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 10 (fun i -> Printf.sprintf "msg%02d-%s" i (String.make 100 'q')) in
  transfer w msgs;
  Alcotest.(check string) "stream intact" (String.concat "" msgs) (Buffer.contents got);
  checkb "mangled once" true !flipped;
  check "checksum failure recorded" 1 (Socket.stats w.b).Socket.checksum_failures;
  check "ledger counts the checksum drop" 1 (Socket.drop_count w.b Socket.Bad_checksum);
  checkb "recovered by retransmission" true ((Socket.stats w.a).Socket.retransmissions > 0)

let test_truncation_dropped_and_recovered () =
  (* Chop the 8th wire datagram down to a runt.  The kernel or the TCP
     input path must drop it into the ledger, and the stream must still
     arrive intact via retransmission. *)
  let cut = ref false in
  let mangle n s =
    if n = 8 && String.length s > 6 && not !cut then begin
      cut := true;
      String.sub s 0 6
    end
    else s
  in
  let w = make_world ~mangle () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 10 (fun i -> Printf.sprintf "trunc%02d-%s" i (String.make 90 't')) in
  transfer w msgs;
  Alcotest.(check string) "stream intact" (String.concat "" msgs) (Buffer.contents got);
  checkb "truncated once" true !cut;
  checkb "runt landed in the drop ledger" true
    (Socket.drop_count w.b Socket.Bad_ip + Socket.drop_count w.b Socket.Bad_header >= 1);
  checkb "ledger total agrees" true (Socket.drops_total w.b >= 1)

let test_abort_handshake_failed () =
  (* A wire that delivers nothing: the active opener must give up with a
     typed abort instead of spinning forever. *)
  let w = make_world ~loss_rate:1.0 () in
  let aborted = ref [] in
  Socket.set_on_abort w.a (fun r -> aborted := r :: !aborted);
  connect w;
  checkb "typed failure" true (Socket.failure w.a = Some Socket.Handshake_failed);
  checkb "socket closed" true (Socket.state w.a = Socket.Closed);
  checkb "callback fired exactly once" true (!aborted = [ Socket.Handshake_failed ])

let test_abort_retry_exhausted () =
  (* Establish, then blackhole the wire (corrupt every later datagram's IP
     header): data retransmissions must exhaust and surface as a typed
     Retry_exhausted abort. *)
  let blackhole = ref false in
  let mangle _ s =
    if !blackhole && String.length s > 0 then begin
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      Bytes.to_string b
    end
    else s
  in
  let w = make_world ~mangle () in
  let aborted = ref [] in
  Socket.set_on_abort w.a (fun r -> aborted := r :: !aborted);
  connect w;
  checkb "established first" true (Socket.state w.a = Socket.Established);
  blackhole := true;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "doomed message";
    None
  in
  (match Socket.send_message w.a ~len:14 ~fill with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send refused");
  Simclock.run_until_idle w.clock;
  checkb "typed failure" true (Socket.failure w.a = Some Socket.Retry_exhausted);
  checkb "socket closed" true (Socket.state w.a = Socket.Closed);
  checkb "callback fired exactly once" true (!aborted = [ Socket.Retry_exhausted ]);
  checkb "retransmissions were attempted" true
    ((Socket.stats w.a).Socket.retransmissions > 0)

let test_send_errors () =
  let w = make_world ~mss:256 () in
  (* Not established yet. *)
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "x";
    None
  in
  checkb "not established" true
    (Socket.send_message w.a ~len:1 ~fill = Error Socket.Not_established);
  connect w;
  checkb "too big" true
    (Socket.send_message w.a ~len:1000 ~fill = Error Socket.Message_too_big)

let test_backpressure () =
  (* Congestion control off: this test targets the ring and the peer
     window. *)
  let w = make_world ~congestion_control:false () in
  connect w;
  (* Fill the window/ring without ever advancing the clock: acks cannot
     arrive, so sends must eventually refuse. *)
  let sent = ref 0 in
  let blocked = ref false in
  let payload = String.make 1000 'z' in
  let fill m ~dst =
    Mem.poke_string m ~pos:dst payload;
    None
  in
  for _ = 1 to 40 do
    if not !blocked then
      match Socket.send_message w.a ~len:1000 ~fill with
      | Ok () -> incr sent
      | Error (Socket.Buffer_full | Socket.Window_full) -> blocked := true
      | Error _ -> Alcotest.fail "unexpected error"
  done;
  checkb "eventually blocked" true !blocked;
  checkb "but sent several first" true (!sent >= 8);
  checkb "in flight tracked" true (Socket.bytes_in_flight w.a = !sent * 1000);
  (* Draining the network frees the window again. *)
  Simclock.run_until_idle w.clock;
  check "all acked" 0 (Socket.bytes_in_flight w.a)

let test_close_sequence () =
  let w = make_world () in
  connect w;
  let got = Buffer.create 8 in
  collect_into w got;
  transfer w [ "bye" ];
  Socket.close w.a;
  Simclock.run_until_idle w.clock;
  checkb "a half closed" true
    (match Socket.state w.a with Socket.Fin_wait_2 | Socket.Time_wait | Socket.Closed -> true | _ -> false);
  checkb "b saw fin" true (Socket.state w.b = Socket.Close_wait);
  Socket.close w.b;
  Simclock.run_until_idle w.clock;
  checkb "b closed" true
    (match Socket.state w.b with Socket.Closed | Socket.Last_ack -> true | _ -> false)

let test_fast_retransmit () =
  (* Drop exactly one data segment; the following segments' dup-acks must
     trigger recovery well before the RTO. *)
  let dropped = ref false in
  let mangle n s =
    (* Corrupt (rather than drop) the 6th datagram's IP header so the
       kernel discards it deterministically. *)
    if n = 6 && not !dropped then begin
      dropped := true;
      let b = Bytes.of_string s in
      Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) lxor 0xff));
      Bytes.to_string b
    end
    else s
  in
  let w = make_world ~mangle () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 12 (fun i -> Printf.sprintf "%03d%s" i (String.make 200 'f')) in
  (* Keep many segments in flight so the loss produces duplicate acks. *)
  transfer ~burst_us:5.0 w msgs;
  Alcotest.(check string) "stream intact" (String.concat "" msgs) (Buffer.contents got);
  checkb "ip error counted" true ((Socket.stats w.b).Socket.ip_errors >= 1);
  checkb "fast retransmit fired" true ((Socket.stats w.a).Socket.fast_retransmits >= 1)

let test_delayed_acks () =
  let count_acks delay =
    let w = make_world ~ack_delay_us:delay () in
    connect w;
    let got = Buffer.create 64 in
    collect_into w got;
    let msgs = List.init 16 (fun i -> Printf.sprintf "%02d%s" i (String.make 120 'd')) in
    transfer ~burst_us:5.0 w msgs;
    Alcotest.(check string) "stream intact" (String.concat "" msgs)
      (Buffer.contents got);
    (Socket.stats w.b).Socket.acks_sent
  in
  let immediate = count_acks 0.0 in
  let delayed = count_acks 400.0 in
  checkb "delayed acking sends fewer acks" true (delayed < immediate)

let test_congestion_window_dynamics () =
  let w = make_world () in
  connect w;
  let initial = Socket.congestion_window w.a in
  check "initial cwnd is two segments" (2 * 1024) initial;
  let got = Buffer.create 64 in
  collect_into w got;
  let msgs = List.init 30 (fun _ -> String.make 1000 'c') in
  transfer ~burst_us:50.0 w msgs;
  let grown = Socket.congestion_window w.a in
  checkb "cwnd grows with successful acks" true (grown > initial);
  (* A retransmission timeout collapses the window back to one segment. *)
  let w2 = make_world ~loss_rate:0.3 ~seed:41 () in
  connect w2;
  let got2 = Buffer.create 64 in
  collect_into w2 got2;
  let msgs2 = List.init 30 (fun _ -> String.make 1000 'd') in
  transfer ~burst_us:50.0 w2 msgs2;
  Alcotest.(check string) "lossy stream still intact" (String.concat "" msgs2)
    (Buffer.contents got2);
  checkb "window shrank at some point" true
    (Socket.congestion_window w2.a < grown
    || (Socket.stats w2.a).Socket.retransmissions > 0)

let test_window_never_exceeded () =
  (* The sender must never have more unacknowledged payload in flight than
     the peer's advertised window, sampled at every send attempt. *)
  let w = make_world ~congestion_control:false () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  let violations = ref 0 in
  let payload = String.make 900 'w' in
  let fill m ~dst =
    Mem.poke_string m ~pos:dst payload;
    None
  in
  for _ = 1 to 400 do
    (match Socket.send_message w.a ~len:900 ~fill with
    | Ok () ->
        if Socket.bytes_in_flight w.a > 16 * 1024 then incr violations
    | Error _ -> ());
    Simclock.advance w.clock 30.0
  done;
  Simclock.run_until_idle w.clock;
  check "no window violations" 0 !violations;
  check "nothing left in flight" 0 (Socket.bytes_in_flight w.a)

(* ------------------------------------------------------------------ *)
(* Zero-window persistence *)

let check_s = Alcotest.(check string)

let send_error_to_string = function
  | Socket.Not_established -> "not established"
  | Socket.Message_too_big -> "message too big"
  | Socket.Buffer_full -> "buffer full"
  | Socket.Window_full -> "window full"

(* Drive the peer's advertised window to zero as seen by [w.a]: shrink
   what [w.b] advertises, then bounce one message off it so the ack
   carries the new window back. *)
let close_peer_window w =
  Socket.set_advertised_window w.b 0;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "warmup!!";
    None
  in
  (match Socket.send_message w.a ~len:8 ~fill with
  | Ok () -> ()
  | Error e -> Alcotest.failf "warmup send refused: %s" (send_error_to_string e));
  Simclock.run_until_idle w.clock;
  check "peer window seen as zero" 0 (Socket.peer_window w.a)

let test_persist_probes_back_off () =
  (* Against a zero window the sender probes, and the probe interval
     doubles up to the ceiling: over the first virtual second that is a
     handful of probes, not the hundreds a fixed 5 ms interval would
     produce. *)
  let w = make_world () in
  connect w;
  close_peer_window w;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst (String.make 100 'p');
    None
  in
  (match Socket.send_message w.a ~len:100 ~fill with
  | Ok () -> Alcotest.fail "send against a zero window must be refused"
  | Error Socket.Window_full -> ()
  | Error e -> Alcotest.failf "expected Window_full, got %s" (send_error_to_string e));
  for _ = 1 to 100 do
    Simclock.advance w.clock 10_000.0
  done;
  let probes = (Socket.stats w.a).Socket.persist_probes in
  checkb "probing happened" true (probes >= 5);
  checkb "backoff kept the probe count small" true (probes <= 12);
  checkb "still alive under the stall deadline" true (Socket.failure w.a = None)

let test_persist_resumes_once_on_reopen () =
  (* When the window reopens, the next probe's ack carries the news; the
     sender cancels the persist timer and the retried message arrives
     exactly once, unpolluted by the probes' garbage bytes. *)
  let w = make_world () in
  connect w;
  let got = Buffer.create 64 in
  collect_into w got;
  close_peer_window w;
  Buffer.clear got;
  let payload = String.init 100 (fun i -> Char.chr (65 + (i mod 26))) in
  let fill m ~dst =
    Mem.poke_string m ~pos:dst payload;
    None
  in
  (match Socket.send_message w.a ~len:100 ~fill with
  | Error Socket.Window_full -> ()
  | _ -> Alcotest.fail "zero window must refuse the send");
  for _ = 1 to 20 do
    Simclock.advance w.clock 10_000.0
  done;
  let probes_before = (Socket.stats w.a).Socket.persist_probes in
  checkb "probed while closed" true (probes_before > 0);
  Socket.set_advertised_window w.b 8192;
  Simclock.run_until_idle w.clock;
  checkb "window reopening discovered" true (Socket.peer_window w.a > 0);
  (match Socket.send_message w.a ~len:100 ~fill with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "send after reopen refused: %s" (send_error_to_string e));
  Simclock.run_until_idle w.clock;
  check_s "delivered exactly once, byte-exact" payload (Buffer.contents got);
  checkb "no abort" true (Socket.failure w.a = None)

let test_persist_stall_deadline_aborts () =
  (* A window that never reopens is a dead peer: past the stall deadline
     the connection aborts with the typed [Peer_stalled] reason. *)
  let w = make_world () in
  connect w;
  close_peer_window w;
  let aborted = ref [] in
  Socket.set_on_abort w.a (fun r -> aborted := r :: !aborted);
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "stalled!";
    None
  in
  (match Socket.send_message w.a ~len:8 ~fill with
  | Error Socket.Window_full -> ()
  | _ -> Alcotest.fail "zero window must refuse the send");
  (* Default stall deadline is 3 s of virtual time; run well past it. *)
  for _ = 1 to 80 do
    Simclock.advance w.clock 100_000.0
  done;
  checkb "aborted exactly once with Peer_stalled" true
    (!aborted = [ Socket.Peer_stalled ]);
  checkb "failure recorded" true (Socket.failure w.a = Some Socket.Peer_stalled);
  checkb "probing stopped after the abort" true
    ((Socket.stats w.a).Socket.persist_probes < 20)

let test_window_shrink_below_in_flight () =
  (* Regression: a peer that shrinks its advertised window below what is
     already in flight must never drive the usable window negative (which
     used to offer negative-length segments to the wire). *)
  let w = make_world ~mss:512 ~congestion_control:false () in
  connect w;
  let got = Buffer.create 4096 in
  collect_into w got;
  let chunks =
    List.init 8 (fun k ->
        String.init 512 (fun i -> Char.chr (33 + (((k * 512) + i) mod 90))))
  in
  List.iter
    (fun chunk ->
      let fill m ~dst =
        Mem.poke_string m ~pos:dst chunk;
        None
      in
      match Socket.send_message w.a ~len:512 ~fill with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send refused: %s" (send_error_to_string e))
    chunks;
  checkb "several segments in flight" true (Socket.bytes_in_flight w.a > 512);
  (* Shrink below what is already in flight; every subsequent ack
     advertises the small window. *)
  Socket.set_advertised_window w.b 512;
  let negative = ref 0 in
  for _ = 1 to 3000 do
    if Socket.send_window_space w.a < 0 then incr negative;
    Simclock.advance w.clock 200.0
  done;
  Simclock.run_until_idle w.clock;
  check "usable window never negative" 0 !negative;
  check_s "stream survives the shrink byte-exact" (String.concat "" chunks)
    (Buffer.contents got);
  checkb "no abort" true (Socket.failure w.a = None)

(* ------------------------------------------------------------------ *)
(* Streaming: MSS segmentation, pipelined window, reassembly *)

module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace

let stream_payload n seed =
  String.init n (fun i -> Char.chr (((i * 131) + (seed * 29)) land 0xff))

let stream_tsdu w payload =
  let fill m ~dst ~off ~len =
    Mem.poke_string m ~pos:dst (String.sub payload off len);
    None
  in
  Socket.send_stream w.a ?seg_unit:None ~len:(String.length payload) ~fill

let pump_until ?(step = 100.0) ?(guard = 100_000) w pred =
  let g = ref guard in
  while (not (pred ())) && !g > 0 do
    decr g;
    Simclock.advance w.clock step
  done

(* Queue every TSDU through [send_stream], spinning the clock through
   sender-side backpressure; gives up if the connection dies. *)
let stream_all ?(step = 50.0) ?(guard = 200_000) w tsdus =
  let pending = Queue.of_seq (List.to_seq tsdus) in
  let g = ref guard and alive = ref true in
  while !alive && (not (Queue.is_empty pending)) && !g > 0 do
    decr g;
    match stream_tsdu w (Queue.peek pending) with
    | Ok () -> ignore (Queue.pop pending)
    | Error Socket.Buffer_full | Error Socket.Window_full ->
        Simclock.advance w.clock step
    | Error _ -> alive := false
  done;
  Simclock.run_until_idle w.clock

let test_stream_pipelined_tsdu () =
  let w = make_world ~max_tsdu:16_384 () in
  connect w;
  let got = Buffer.create 16_384 in
  collect_into w got;
  let payload = stream_payload 12_000 1 in
  (match stream_tsdu w payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_stream refused: %s" (send_error_to_string e));
  pump_until w (fun () -> Buffer.length got >= 12_000);
  Simclock.run_until_idle w.clock;
  check_s "TSDU delivered byte-exact" payload (Buffer.contents got);
  let st = Socket.stats w.a in
  checkb "segmented into many TPDUs" true (st.Socket.segments_sent >= 12);
  checkb "window pipelined: more than one MSS unacknowledged at once" true
    (st.Socket.peak_in_flight > 1024);
  check "no TSDU left queued" 0 (Socket.pending_streams w.a);
  check "one reassembled delivery" 12_000
    (Socket.stats w.b).Socket.bytes_delivered

let test_stream_backpressure_and_ordering () =
  let w = make_world ~max_tsdu:8192 () in
  connect w;
  let got = Buffer.create 65_536 in
  collect_into w got;
  let tsdus =
    List.init 20 (fun k -> stream_payload (1500 + (517 * k mod 4000)) k)
  in
  let pending = Queue.of_seq (List.to_seq tsdus) in
  let saw_buffer_full = ref false in
  let guard = ref 200_000 in
  while (not (Queue.is_empty pending)) && !guard > 0 do
    decr guard;
    (match stream_tsdu w (Queue.peek pending) with
    | Ok () ->
        ignore (Queue.pop pending);
        if Socket.pending_streams w.a > 0 then begin
          (* single-message sends are locked out while streams are
             pending, so the two framings can never interleave *)
          let fill m ~dst =
            Mem.poke_string m ~pos:dst "XXXXXXXX";
            None
          in
          match Socket.send_message w.a ~len:8 ~fill with
          | Ok () -> Alcotest.fail "send_message accepted mid-stream"
          | Error Socket.Buffer_full -> ()
          | Error e ->
              Alcotest.failf "expected Buffer_full, got %s"
                (send_error_to_string e)
        end
    | Error Socket.Buffer_full ->
        saw_buffer_full := true;
        Simclock.advance w.clock 50.0
    | Error e ->
        Alcotest.failf "send_stream refused: %s" (send_error_to_string e));
    ()
  done;
  Simclock.run_until_idle w.clock;
  check_s "TSDUs delivered in order, byte-exact" (String.concat "" tsdus)
    (Buffer.contents got);
  checkb "sender backpressure engaged (pending-stream cap)" true
    !saw_buffer_full

let test_stream_ring_wrap () =
  (* A transfer much larger than the retransmission ring must cycle it,
     with segments straddling the wrap point ([mss] deliberately does not
     divide the ring size, so reservations skip a wasted tail). *)
  let w = make_world ~mss:1000 ~send_buffer:8192 ~max_tsdu:4096 () in
  connect w;
  let got = Buffer.create 65_536 in
  collect_into w got;
  let tsdus = List.init 16 (fun k -> stream_payload 4000 (100 + k)) in
  stream_all w tsdus;
  check_s "wrapped transfer byte-exact" (String.concat "" tsdus)
    (Buffer.contents got);
  checkb "send ring wrapped" true (Socket.ring_wraps w.a > 0);
  checkb "no abort" true (Socket.failure w.a = None)

let test_stream_impaired_delivery () =
  (* Seeded impairment grid: reordering (jitter), duplication and burst
     loss.  The invariant is the soak's: byte-exact delivery or a typed
     abort — never silent corruption. *)
  List.iter
    (fun (loss_rate, jitter_us, dup_rate, seed) ->
      let w =
        make_world ~loss_rate ~jitter_us ~dup_rate ~seed ~max_tsdu:8192
          ~ooo_slots:16 ()
      in
      connect w;
      if Socket.state w.a = Socket.Established then begin
        let got = Buffer.create 65_536 in
        collect_into w got;
        let tsdus = List.init 6 (fun k -> stream_payload 6000 (seed + k)) in
        stream_all w tsdus;
        match (Socket.failure w.a, Socket.failure w.b) with
        | None, None ->
            check_s
              (Printf.sprintf "seed %d byte-exact" seed)
              (String.concat "" tsdus) (Buffer.contents got)
        | Some _, _ | _, Some _ -> () (* typed abort is a legal outcome *)
      end)
    [ (0.12, 0.0, 0.0, 7);
      (0.0, 2500.0, 0.0, 23);
      (0.0, 500.0, 0.35, 51);
      (0.25, 1000.0, 0.1, 99) ]

let test_stream_reorder_uses_stash () =
  (* Heavy jitter reorders segments; the out-of-order stash must absorb
     them and reassembly must still be exact. *)
  let w = make_world ~jitter_us:2000.0 ~seed:77 ~max_tsdu:16_384 ~ooo_slots:16 () in
  connect w;
  let got = Buffer.create 16_384 in
  collect_into w got;
  let payload = stream_payload 16_000 4 in
  stream_all w [ payload ];
  check_s "reordered stream byte-exact" payload (Buffer.contents got);
  checkb "receiver saw out-of-order segments" true
    ((Socket.stats w.b).Socket.out_of_order > 0)

let test_stream_fast_recovery () =
  (* Drop exactly one mid-flight data segment: the duplicate acks behind
     it must trigger a fast retransmit and the window must survive
     recovery without an RTO storm. *)
  let data_seen = ref 0 in
  let mangle _ s =
    if String.length s > 1000 then begin
      incr data_seen;
      if !data_seen = 8 then begin
        let b = Bytes.of_string s in
        Bytes.set b 0 '\xff';
        (* wreck the IP version: the kernel drops it *)
        Bytes.to_string b
      end
      else s
    end
    else s
  in
  let w = make_world ~mangle ~max_tsdu:32_768 ~ooo_slots:16 () in
  connect w;
  let got = Buffer.create 32_768 in
  collect_into w got;
  let payload = stream_payload 30_000 5 in
  stream_all w [ payload ];
  check_s "recovered stream byte-exact" payload (Buffer.contents got);
  let st = Socket.stats w.a in
  checkb "the drop actually happened" true (!data_seen >= 8);
  checkb "recovered by fast retransmit" true (st.Socket.fast_retransmits >= 1);
  checkb "no retransmission storm" true (st.Socket.retransmissions <= 3);
  checkb "window stayed open after recovery (cwnd >= 2 MSS)" true
    (Socket.congestion_window w.a >= 2 * 1024)

let test_stream_window_shrink_mid_flight () =
  (* Satellite regression: the peer shrinks its window below the bytes
     already in flight in the middle of a streamed transfer. *)
  let w = make_world ~mss:512 ~max_tsdu:20_480 () in
  connect w;
  let got = Buffer.create 20_480 in
  collect_into w got;
  let payload = stream_payload 20_000 9 in
  (match stream_tsdu w payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_stream refused: %s" (send_error_to_string e));
  pump_until ~step:50.0 ~guard:400 w (fun () -> Socket.bytes_in_flight w.a > 512);
  checkb "several segments in flight before the shrink" true
    (Socket.bytes_in_flight w.a > 512);
  Socket.set_advertised_window w.b 256;
  let negative = ref 0 in
  for _ = 1 to 2000 do
    if Socket.send_window_space w.a < 0 then incr negative;
    Simclock.advance w.clock 100.0
  done;
  Socket.set_advertised_window w.b Socket.default_config.Socket.recv_window;
  pump_until ~guard:50_000 w (fun () -> Buffer.length got >= 20_000);
  Simclock.run_until_idle w.clock;
  check "usable window never negative" 0 !negative;
  check_s "stream survives the shrink byte-exact" payload (Buffer.contents got);
  checkb "no abort" true (Socket.failure w.a = None)

let test_stream_metrics_conservation () =
  (* The registry's TCP instruments must agree with the socket's own
     ledger after a streamed transfer. *)
  let before = M.snapshot M.default in
  let w = make_world ~max_tsdu:16_384 () in
  connect w;
  let got = Buffer.create 16_384 in
  collect_into w got;
  let payload = stream_payload 16_000 3 in
  stream_all w [ payload ];
  check_s "clean transfer byte-exact" payload (Buffer.contents got);
  let after = M.snapshot M.default in
  let st = Socket.stats w.a in
  let d name = M.counter_diff after before name in
  check "tcp.retransmissions matches the socket ledger"
    st.Socket.retransmissions (d "tcp.retransmissions");
  check "tcp.fast_retransmits matches the socket ledger"
    st.Socket.fast_retransmits (d "tcp.fast_retransmits");
  (match M.find after "tcp.cwnd" with
  | Some (M.Gauge v) ->
      check "tcp.cwnd gauge tracks the congestion window"
        (Socket.congestion_window w.a) v
  | _ -> Alcotest.fail "tcp.cwnd gauge missing");
  (match M.find after "tcp.segments_in_flight" with
  | Some (M.Gauge v) -> check "nothing in flight after the transfer" 0 v
  | _ -> Alcotest.fail "tcp.segments_in_flight gauge missing");
  (match M.find after "tcp.ssthresh" with
  | Some (M.Gauge _) -> ()
  | _ -> Alcotest.fail "tcp.ssthresh gauge missing");
  match (M.find after "tcp.segment_retransmits", M.find before "tcp.segment_retransmits") with
  | Some (M.Histogram h1), Some (M.Histogram h0) ->
      (* One observation per data segment retired from the queue; a clean
         run puts every one in the zero bucket. *)
      let data_segments = (16_000 + 1023) / 1024 in
      check "one histogram observation per acked data segment" data_segments
        (h1.M.count - h0.M.count);
      check "clean run: all segments in the zero-retransmit bucket"
        (h1.M.count - h0.M.count)
        (h1.M.buckets.(0) - h0.M.buckets.(0))
  | _ -> Alcotest.fail "tcp.segment_retransmits histogram missing"

let test_stream_tracing_changes_nothing () =
  (* Satellite: enabling the per-packet tracer must not change a single
     wire byte of a streamed transfer, while recording the per-segment
     spans that witness pipelining. *)
  let run_capture ~traced =
    let wire = Buffer.create 100_000 in
    let mangle _ s =
      Buffer.add_string wire s;
      Buffer.add_char wire '|';
      s
    in
    if traced then Trace.enable ~capacity:65_536 ();
    let w = make_world ~seed:13 ~mangle ~max_tsdu:16_384 () in
    connect w;
    let got = Buffer.create 16_384 in
    collect_into w got;
    let payload = stream_payload 16_000 6 in
    stream_all w [ payload ];
    let spans = if traced then Trace.spans () else [] in
    if traced then Trace.disable ();
    check_s "transfer byte-exact" payload (Buffer.contents got);
    (Buffer.contents wire, spans)
  in
  let wire_plain, _ = run_capture ~traced:false in
  let wire_traced, spans = run_capture ~traced:true in
  checkb "traced and untraced runs are wire-identical" true
    (String.equal wire_plain wire_traced);
  let count stage =
    List.length (List.filter (fun s -> s.Trace.stage = stage) spans)
  in
  checkb "tcp.segment spans recorded" true (count Trace.Tcp_segment >= 12);
  checkb "tcp.ack instants recorded" true (count Trace.Tcp_ack >= 4);
  let seg_spans =
    List.filter
      (fun s -> s.Trace.stage = Trace.Tcp_segment && not s.Trace.is_instant)
      spans
  in
  (* Overlapping segment spans are the signature of a pipelined window:
     some segment must start before an earlier one is acknowledged. *)
  let overlapping =
    List.exists
      (fun s1 ->
        List.exists
          (fun s2 ->
            s1 != s2
            && s1.Trace.ts <= s2.Trace.ts
            && s2.Trace.ts < s1.Trace.ts +. s1.Trace.dur)
          seg_spans)
      seg_spans
  in
  checkb "segment lifetimes overlap (pipelined window)" true overlapping

let prop_lossy_stream_integrity =
  QCheck.Test.make ~count:25 ~name:"TCP delivers the exact stream under random loss"
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size Gen.(int_range 1 15) (int_range 1 300)))
    (fun (seed, sizes) ->
      let loss_rate = float_of_int (seed mod 4) *. 0.08 in
      let w = make_world ~loss_rate ~seed ~jitter_us:100.0 () in
      connect w;
      if Socket.state w.a <> Socket.Established then true (* pathological loss *)
      else begin
        let got = Buffer.create 256 in
        collect_into w got;
        let msgs =
          List.mapi (fun i n -> String.make n (Char.chr (33 + (i mod 90)))) sizes
        in
        transfer w msgs;
        String.equal (String.concat "" msgs) (Buffer.contents got)
      end)

(* ------------------------------------------------------------------ *)
(* SACK: option codec, scoreboard recovery, misbehaving peers *)

(* Build a header carrying up to three well-formed SACK blocks from a
   bag of random edge offsets above the cumulative ack. *)
let sack_header_of (ack, edges) =
  let edges = List.sort_uniq compare (List.map (fun e -> ack + 1 + e) edges) in
  let rec pair = function
    | l :: r :: rest -> (l, r) :: pair rest
    | _ -> []
  in
  let blocks =
    List.filteri (fun i _ -> i < Tcp_header.max_sack_blocks) (pair edges)
  in
  Tcp_header.make ~seq:(ack / 2) ~ack ~flags:Tcp_header.ack_flag ~window:8192
    ~checksum:0xCAFE ~sack:blocks ~src_port:100 ~dst_port:200 ()

let prop_sack_header_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"SACK option survives both codecs and the bare read ignores it"
    QCheck.(
      pair (int_range 1000 1_000_000)
        (list_of_size Gen.(int_range 0 8) (int_range 1 100_000)))
    (fun input ->
      let h = sack_header_of input in
      let s = Tcp_header.to_string h in
      String.length s = Tcp_header.wire_size h
      && (match Tcp_header.of_string s ~pos:0 with
         | Ok h' -> h' = h
         | Error _ -> false)
      &&
      let sim = Sim.create (Config.custom ()) in
      Tcp_header.write_mem sim.Sim.mem ~pos:512 h;
      let p =
        Tcp_header.read_mem_v sim.Sim.mem ~pos:512 ~total:(Tcp_header.wire_size h)
      in
      p.Tcp_header.options_ok
      && p.Tcp_header.hdr = h
      && p.Tcp_header.hdr_len = Tcp_header.wire_size h
      (* the bare 20-byte read sees the base header and no options *)
      && Tcp_header.read_mem sim.Sim.mem ~pos:512 = { h with Tcp_header.sack = [] })

let test_sack_option_malformed_rejected () =
  let h =
    Tcp_header.make ~seq:1000 ~ack:500 ~flags:Tcp_header.ack_flag ~window:4096
      ~sack:[ (600, 700); (900, 1000) ] ~src_port:1 ~dst_port:2 ()
  in
  let s = Tcp_header.to_string h in
  check "two blocks occupy 40 wire bytes" 40 (String.length s);
  let patched off v =
    let b = Bytes.of_string s in
    Bytes.set b off (Char.chr v);
    Bytes.to_string b
  in
  let rejects name wire =
    checkb name true (Result.is_error (Tcp_header.of_string wire ~pos:0))
  in
  rejects "truncated option area" (String.sub s 0 (String.length s - 4));
  rejects "padding is not NOP NOP" (patched Tcp_header.size 0x00);
  rejects "wrong option kind" (patched (Tcp_header.size + 2) 0x06);
  rejects "length byte disagrees with the data offset"
    (patched (Tcp_header.size + 3) (2 + 8));
  (* data offset claiming a 4-byte option area: too short for any SACK *)
  rejects "undersized option area" (patched 12 (0x60 lor (Char.code s.[12] land 0x0f)));
  (* data offset below the minimum header *)
  rejects "data offset below 5 words" (patched 12 (0x40 lor (Char.code s.[12] land 0x0f)));
  (* the untouched wire still parses, so the rejections above are real *)
  checkb "canonical wire accepted" true
    (match Tcp_header.of_string s ~pos:0 with Ok h' -> h' = h | Error _ -> false)

let test_ooo_autosize () =
  (* ooo_slots = 0 (the default) sizes the stash to a full window of MSS
     segments plus slack; an explicit value is honoured; tiny windows
     keep the floor of 8. *)
  let w = make_world () in
  check "auto: recv_window/mss + 4" ((16 * 1024 / 1024) + 4) (Socket.ooo_capacity w.a);
  let w2 = make_world ~ooo_slots:16 () in
  check "explicit value honoured" 16 (Socket.ooo_capacity w2.a);
  let w3 = make_world ~mss:8192 () in
  check "floor of 8 segments" 8 (Socket.ooo_capacity w3.a)

let test_sack_multi_hole_recovery () =
  (* Wreck two separated data segments of one pipelined flight.  The
     duplicate acks recover the first hole by fast retransmit; the
     scoreboard must infer and retransmit the second hole in the same
     recovery round — no RTO may fire. *)
  let data_seen = ref 0 in
  let mangle _ s =
    if String.length s > 1000 then begin
      incr data_seen;
      if !data_seen = 5 || !data_seen = 7 then begin
        let b = Bytes.of_string s in
        Bytes.set b 0 '\xff';
        Bytes.to_string b
      end
      else s
    end
    else s
  in
  let w = make_world ~mangle ~max_tsdu:32_768 () in
  connect w;
  let got = Buffer.create 32_768 in
  collect_into w got;
  let payload = stream_payload 30_000 21 in
  stream_all w [ payload ];
  check_s "two-hole flight byte-exact" payload (Buffer.contents got);
  let sa = Socket.stats w.a and sb = Socket.stats w.b in
  checkb "both segments were wrecked" true (!data_seen >= 7);
  checkb "fast retransmit opened recovery" true (sa.Socket.fast_retransmits >= 1);
  checkb "scoreboard filled a further hole" true (sa.Socket.sack_retransmits >= 1);
  check "no RTO fallback" 0 sa.Socket.rto_fallbacks;
  checkb "receiver reported its stash" true (sb.Socket.sack_blocks_tx >= 1);
  checkb "sender accepted the blocks" true (sa.Socket.sack_blocks_rx >= 1);
  check "an honest stash never produces invalid blocks" 0 sa.Socket.sack_invalid;
  checkb "no abort" true (Socket.failure w.a = None)

let test_sack_impaired_grid_agreement () =
  (* Scoreboard-vs-stash agreement: across a seeded impairment grid,
     every SACK block the receiver's stash emits must be acceptable to
     the sender's scoreboard (sack_invalid = 0 — loss, reordering and
     duplication can delay or repeat honest feedback but never forge
     it), and delivery stays byte-exact. *)
  List.iter
    (fun (loss_rate, jitter_us, dup_rate, seed) ->
      let w = make_world ~loss_rate ~jitter_us ~dup_rate ~seed ~max_tsdu:8192 () in
      connect w;
      if Socket.state w.a = Socket.Established then begin
        let got = Buffer.create 32_768 in
        collect_into w got;
        let tsdus = List.init 4 (fun k -> stream_payload 6000 (seed + k)) in
        stream_all w tsdus;
        match (Socket.failure w.a, Socket.failure w.b) with
        | None, None ->
            check_s
              (Printf.sprintf "seed %d byte-exact" seed)
              (String.concat "" tsdus) (Buffer.contents got);
            check
              (Printf.sprintf "seed %d: no honest block rejected" seed)
              0 (Socket.stats w.a).Socket.sack_invalid
        | Some _, _ | _, Some _ -> () (* typed abort is a legal outcome *)
      end)
    [ (0.1, 0.0, 0.0, 3);
      (0.05, 1500.0, 0.0, 19);
      (0.15, 800.0, 0.1, 42);
      (0.08, 300.0, 0.25, 77) ]

let test_sack_reneging_rto_recovery () =
  (* Lose one segment so the scoreboard fills with SACK hints, then
     blackhole the wire across several RTO intervals: the timeout must
     treat the scoreboard as hints only (RFC 2018 §8 — clear it and
     resend from snd_una), and the stream must still complete byte-exact
     once the wire heals. *)
  let data_seen = ref 0 in
  let blackhole = ref false in
  let mangle _ s =
    let wreck () =
      let b = Bytes.of_string s in
      Bytes.set b 0 '\xff';
      Bytes.to_string b
    in
    if !blackhole then wreck ()
    else if String.length s > 1000 then begin
      incr data_seen;
      if !data_seen = 5 then wreck () else s
    end
    else s
  in
  let w = make_world ~mangle ~max_tsdu:16_384 () in
  connect w;
  let got = Buffer.create 16_384 in
  collect_into w got;
  let payload = stream_payload 12_000 8 in
  (match stream_tsdu w payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_stream refused: %s" (send_error_to_string e));
  (* Let the flight (minus the hole) out and the SACKs back... *)
  Simclock.advance w.clock 100.0;
  (* ...then take the wire down across the RTO and its first backoffs. *)
  blackhole := true;
  for _ = 1 to 8 do
    Simclock.advance w.clock 2_000.0
  done;
  blackhole := false;
  pump_until w (fun () -> Buffer.length got >= 12_000);
  Simclock.run_until_idle w.clock;
  check_s "recovered byte-exact after reneging-grade feedback loss" payload
    (Buffer.contents got);
  let sa = Socket.stats w.a in
  checkb "the scoreboard held hints before the blackout" true
    (sa.Socket.sack_blocks_rx >= 1);
  checkb "the RTO was the recovery of last resort" true
    (sa.Socket.rto_fallbacks >= 1);
  checkb "no abort" true (Socket.failure w.a = None)

(* Rebuild the pure acks of one direction with a forged header: the
   lying receiver's NIC.  [rewrite h] returns [None] to pass the
   datagram through untouched or [Some hs] to replace it (checksums are
   recomputed, so the forgeries survive the server's validation up to
   the SACK/ack checks under test). *)
let tamper_pure_acks ~port rewrite d =
  match Ilp_netsim.Ipv4.decapsulate d.Datagram.payload with
  | Error _ -> [ d ]
  | Ok (ip, seg) ->
      if d.Datagram.src_port <> port then [ d ]
      else (
        match Tcp_header.of_string seg ~pos:0 with
        | Error _ -> [ d ]
        | Ok h ->
            let pure =
              Tcp_header.has h Tcp_header.ack_flag
              && (not (Tcp_header.has h Tcp_header.syn))
              && (not (Tcp_header.has h Tcp_header.fin))
              && (not (Tcp_header.has h Tcp_header.rst))
              && String.length seg = Tcp_header.wire_size h
            in
            if not pure then [ d ]
            else
              match rewrite h with
              | None -> [ d ]
              | Some hs ->
                  List.map
                    (fun h' ->
                      let ck =
                        Tcp_header.checksum h'
                          ~payload_acc:Ilp_checksum.Internet.empty
                          ~payload_len:0
                      in
                      let seg' =
                        Tcp_header.to_string { h' with Tcp_header.checksum = ck }
                      in
                      let ip' =
                        Ilp_netsim.Ipv4.make ~ident:ip.Ilp_netsim.Ipv4.ident
                          ~src:ip.Ilp_netsim.Ipv4.src ~dst:ip.Ilp_netsim.Ipv4.dst
                          ~payload_len:(String.length seg') ()
                      in
                      Datagram.create ~src_port:d.Datagram.src_port
                        ~dst_port:d.Datagram.dst_port
                        ~payload:(Ilp_netsim.Ipv4.encapsulate ip' seg'))
                    hs)

let run_lied_to_transfer ~tamper ~bytes =
  let w = make_world ~tamper ~max_tsdu:16_384 () in
  connect w;
  let got = Buffer.create bytes in
  collect_into w got;
  let payload = stream_payload bytes 33 in
  stream_all w [ payload ];
  (w, payload, Buffer.contents got)

let test_sack_forged_beyond_sndnxt_rejected () =
  (* Every ack claims a SACK block far beyond anything the sender ever
     transmitted.  Each forged block must be dropped and counted, and
     the transfer must still complete byte-exact on the cumulative
     acks. *)
  let tamper =
    tamper_pure_acks ~port:200 (fun h ->
        Some
          [ { h with
              Tcp_header.sack =
                [ (h.Tcp_header.ack + 1_000_000, h.Tcp_header.ack + 1_001_448) ]
            } ])
  in
  let w, payload, got = run_lied_to_transfer ~tamper ~bytes:12_000 in
  check_s "transfer survives the lying feedback" payload got;
  let sa = Socket.stats w.a in
  checkb "forgeries actually happened" true
    ((Link.stats w.link).Link.tampered > 0);
  checkb "every forged block was rejected and counted" true
    (sa.Socket.sack_invalid > 0);
  check "none entered the scoreboard" 0 sa.Socket.sack_blocks_rx;
  checkb "no abort (the lie is counted, not fatal)" true
    (Socket.failure w.a = None)

let test_sack_overlapping_blocks_rejected () =
  (* Blocks of one ack that overlap each other are structurally
     impossible from an honest stash; at least one of each pair must be
     rejected whatever the current snd_nxt. *)
  let tamper =
    tamper_pure_acks ~port:200 (fun h ->
        let a = h.Tcp_header.ack in
        Some [ { h with Tcp_header.sack = [ (a + 1, a + 9); (a + 5, a + 13) ] } ])
  in
  let w, payload, got = run_lied_to_transfer ~tamper ~bytes:12_000 in
  check_s "transfer survives overlapping-block acks" payload got;
  checkb "overlaps were rejected and counted" true
    ((Socket.stats w.a).Socket.sack_invalid > 0);
  checkb "no abort" true (Socket.failure w.a = None)

let test_optimistic_ack_aborts () =
  (* One ack acknowledging data never sent: the classic optimistic-ack
     attack on the congestion clock.  The sender must refuse to be
     driven by the forged clock and abort with the typed reason. *)
  let fired = ref false in
  let tamper =
    tamper_pure_acks ~port:200 (fun h ->
        if !fired then None
        else begin
          fired := true;
          Some [ { h with Tcp_header.ack = h.Tcp_header.ack + 100_000 } ]
        end)
  in
  let w = make_world ~tamper ~max_tsdu:16_384 () in
  connect w;
  let aborted = ref [] in
  Socket.set_on_abort w.a (fun r -> aborted := r :: !aborted);
  let got = Buffer.create 16_384 in
  collect_into w got;
  stream_all w [ stream_payload 12_000 14 ];
  checkb "the forged ack went out" true !fired;
  checkb "typed failure" true (Socket.failure w.a = Some Socket.Misbehaving_peer);
  checkb "socket closed" true (Socket.state w.a = Socket.Closed);
  checkb "callback fired exactly once" true
    (!aborted = [ Socket.Misbehaving_peer ])

let test_ack_division_no_cwnd_inflation () =
  (* A receiver splitting each segment's acknowledgement into four tiny
     acks (ack division) tries to inflate a packet-counted congestion
     window fourfold.  Byte-counted growth (RFC 3465) must award the
     divided run no more window than the honest one. *)
  let run ~divide =
    let tamper =
      tamper_pure_acks ~port:200 (fun h ->
          let a = h.Tcp_header.ack in
          if not divide then None
          else
            Some
              [ { h with Tcp_header.ack = a - 3 };
                { h with Tcp_header.ack = a - 2 };
                { h with Tcp_header.ack = a - 1 };
                h ])
    in
    let w = make_world ~tamper ~max_tsdu:16_384 () in
    connect w;
    let got = Buffer.create 16_384 in
    collect_into w got;
    let payload = stream_payload 16_000 27 in
    stream_all w [ payload ];
    check_s "transfer byte-exact" payload (Buffer.contents got);
    checkb "no abort" true (Socket.failure w.a = None);
    (Socket.congestion_window w.a, (Socket.stats w.a).Socket.segments_received)
  in
  let honest_cwnd, honest_acks = run ~divide:false in
  let divided_cwnd, divided_acks = run ~divide:true in
  checkb "the division actually multiplied the ack stream" true
    (divided_acks > honest_acks);
  checkb "ack division earned no extra congestion window" true
    (divided_cwnd <= honest_cwnd)

let test_dupack_forgery_bounded () =
  (* A receiver replicating every ack eightfold forges loss signals: the
     spurious fast retransmits it provokes must be detected via D-SACK,
     the recovery inflation must stay bounded by the real flight, and
     the forged run must never end with a bigger window than the honest
     one. *)
  let run ~forge =
    let tamper =
      tamper_pure_acks ~port:200 (fun h ->
          if forge then Some [ h; h; h; h; h; h; h; h ] else None)
    in
    let w = make_world ~tamper ~max_tsdu:16_384 () in
    connect w;
    let got = Buffer.create 16_384 in
    collect_into w got;
    let payload = stream_payload 16_000 18 in
    stream_all w [ payload ];
    check_s "transfer byte-exact" payload (Buffer.contents got);
    checkb "no abort" true (Socket.failure w.a = None);
    (w, Socket.congestion_window w.a)
  in
  let _, honest_cwnd = run ~forge:false in
  let w, forged_cwnd = run ~forge:true in
  let sa = Socket.stats w.a in
  checkb "forged duplicates provoked retransmissions" true
    (sa.Socket.retransmissions > 0);
  checkb "D-SACK exposed them as spurious" true
    (sa.Socket.spurious_retransmits > 0);
  checkb "dupack forgery never ends with a bigger window" true
    (forged_cwnd <= honest_cwnd)

let test_sack_metrics_conservation () =
  (* The registry's SACK and RTO instruments must agree with the socket
     ledgers after a lossy transfer that exercised them all. *)
  let before = M.snapshot M.default in
  let w = make_world ~loss_rate:0.12 ~dup_rate:0.15 ~seed:61 ~max_tsdu:8192 () in
  connect w;
  let got = Buffer.create 32_768 in
  collect_into w got;
  let tsdus = List.init 4 (fun k -> stream_payload 6000 (80 + k)) in
  stream_all w tsdus;
  check_s "lossy transfer byte-exact" (String.concat "" tsdus)
    (Buffer.contents got);
  let after = M.snapshot M.default in
  let sa = Socket.stats w.a and sb = Socket.stats w.b in
  let d name = M.counter_diff after before name in
  let both f = f sa + f sb in
  checkb "the run exercised the scoreboard" true (sa.Socket.sack_blocks_rx > 0);
  check "tcp.rto_fallbacks" (both (fun s -> s.Socket.rto_fallbacks))
    (d "tcp.rto_fallbacks");
  check "tcp.sack_blocks_rx" (both (fun s -> s.Socket.sack_blocks_rx))
    (d "tcp.sack_blocks_rx");
  check "tcp.sack_blocks_tx" (both (fun s -> s.Socket.sack_blocks_tx))
    (d "tcp.sack_blocks_tx");
  check "tcp.sack_invalid" (both (fun s -> s.Socket.sack_invalid))
    (d "tcp.sack_invalid");
  check "tcp.sack_retransmits" (both (fun s -> s.Socket.sack_retransmits))
    (d "tcp.sack_retransmits");
  check "tcp.spurious_retransmits" (both (fun s -> s.Socket.spurious_retransmits))
    (d "tcp.spurious_retransmits")

let test_sack_off_is_newreno () =
  (* With [sack = false] the receiver attaches no blocks and the sender
     keeps no scoreboard, but a lossy transfer still completes — the
     NewReno baseline the benchmark gates against. *)
  let w = make_world ~sack:false ~loss_rate:0.1 ~seed:29 ~max_tsdu:8192 () in
  connect w;
  let got = Buffer.create 32_768 in
  collect_into w got;
  let tsdus = List.init 4 (fun k -> stream_payload 6000 (50 + k)) in
  stream_all w tsdus;
  check_s "NewReno transfer byte-exact" (String.concat "" tsdus)
    (Buffer.contents got);
  let sa = Socket.stats w.a and sb = Socket.stats w.b in
  check "receiver attached no blocks" 0 sb.Socket.sack_blocks_tx;
  check "sender accepted none" 0 sa.Socket.sack_blocks_rx;
  check "scoreboard idle" 0 sa.Socket.sack_retransmits

(* ------------------------------------------------------------------ *)
(* Node-crash fault model: RST semantics, keepalive, timer hygiene *)

let blackhole_mangle on _ s =
  (* Corrupt every datagram's IP header once [on] is set: the kernel
     drops each one, so the sender transmits into the void. *)
  if !on && String.length s > 0 then begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    Bytes.to_string b
  end
  else s

let test_rst_on_destroyed_connection () =
  let w = make_world () in
  connect w;
  let aborted = ref [] in
  Socket.set_on_abort w.a (fun r -> aborted := r :: !aborted);
  (* b's host crashes: no FIN, no callback — b answers later segments
     with RST, and a's abort is the typed Connection_reset, positive
     evidence the peer is up but forgot the connection. *)
  Socket.destroy w.b;
  checkb "destroyed" true (Socket.destroyed w.b);
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "into the void";
    None
  in
  (match Socket.send_message w.a ~len:13 ~fill with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send refused");
  Simclock.run_until_idle w.clock;
  checkb "typed Connection_reset, not Retry_exhausted" true
    (Socket.failure w.a = Some Socket.Connection_reset);
  checkb "abort callback fired exactly once" true
    (!aborted = [ Socket.Connection_reset ]);
  checkb "dead side sent the reset" true ((Socket.stats w.b).Socket.rst_tx >= 1);
  checkb "reset received" true ((Socket.stats w.a).Socket.rst_rx >= 1)

let test_destroy_cancels_every_timer () =
  (* Crash mid-flight with retransmission, delayed-ack and persist
     machinery armed: destroy must leave zero owned timers behind. *)
  let w = make_world ~ack_delay_us:5_000.0 () in
  connect w;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst (String.make 600 'q');
    None
  in
  (match Socket.send_message w.a ~len:600 ~fill with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send refused");
  Simclock.advance w.clock 100.0;
  Socket.destroy w.a;
  Socket.destroy w.b;
  check "a timers cancelled" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a));
  check "b timers cancelled" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.b));
  Simclock.run_until_idle w.clock

let test_abort_cancels_every_timer () =
  let on = ref false in
  let w = make_world ~mangle:(blackhole_mangle on) () in
  connect w;
  on := true;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "doomed";
    None
  in
  (match Socket.send_message w.a ~len:6 ~fill with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send refused");
  Simclock.run_until_idle w.clock;
  checkb "retry exhaustion surfaced" true
    (Socket.failure w.a = Some Socket.Retry_exhausted);
  check "aborted side left no timers" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a))

let test_keepalive_detects_restart () =
  let w = make_world () in
  connect w;
  let verdicts = ref [] in
  Socket.destroy w.b;
  Socket.start_keepalive w.a ~interval_us:10_000.0 ~probes:3
    ~on_result:(fun v -> verdicts := v :: !verdicts)
    ();
  Simclock.run_until_idle w.clock;
  checkb "probe answered with RST reports Peer_reset" true
    (List.mem Socket.Peer_reset !verdicts);
  checkb "half-open connection aborts Connection_reset" true
    (Socket.failure w.a = Some Socket.Connection_reset);
  checkb "probe counted" true ((Socket.stats w.a).Socket.keepalive_probes >= 1);
  check "monitor left no timers" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a))

let test_keepalive_peer_silent () =
  let on = ref false in
  let w = make_world ~mangle:(blackhole_mangle on) () in
  connect w;
  on := true;
  let verdicts = ref [] in
  Socket.start_keepalive w.a ~interval_us:10_000.0 ~probes:2
    ~on_result:(fun v -> verdicts := v :: !verdicts)
    ();
  Simclock.run_until_idle w.clock;
  checkb "probe budget exhausted reports Peer_silent" true
    (List.mem Socket.Peer_silent !verdicts);
  checkb "silence is Retry_exhausted, not Connection_reset" true
    (Socket.failure w.a = Some Socket.Retry_exhausted);
  check "monitor left no timers" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a))

let test_keepalive_peer_alive_keeps_running () =
  let w = make_world () in
  connect w;
  let verdicts = ref [] in
  Socket.start_keepalive w.a ~interval_us:10_000.0 ~probes:2
    ~on_result:(fun v -> verdicts := v :: !verdicts)
    ();
  for _ = 1 to 6 do
    Simclock.advance w.clock 10_000.0
  done;
  checkb "answered probes report Peer_alive" true
    (List.mem Socket.Peer_alive !verdicts);
  checkb "no terminal verdict on a live peer" true
    ((not (List.mem Socket.Peer_reset !verdicts))
    && not (List.mem Socket.Peer_silent !verdicts));
  checkb "connection unharmed" true (Socket.failure w.a = None);
  Socket.stop_keepalive w.a;
  Simclock.run_until_idle w.clock;
  check "monitor stopped cleanly" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a))

let test_fin_with_queued_stream_tsdus () =
  (* Half-close while send_stream still holds queued TSDUs: the FIN must
     ride behind every queued byte, and the receiver reassembles all of
     them before seeing it. *)
  let w = make_world ~max_tsdu:16_384 () in
  connect w;
  let got = Buffer.create 8192 in
  collect_into w got;
  let tsdus = List.init 4 (fun k -> stream_payload 2000 (90 + k)) in
  List.iter
    (fun p ->
      match stream_tsdu w p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send_stream refused: %s" (send_error_to_string e))
    tsdus;
  checkb "TSDUs still queued at close time" true (Socket.pending_streams w.a > 0);
  Socket.close w.a;
  Simclock.run_until_idle w.clock;
  check_s "every queued TSDU delivered before the FIN"
    (String.concat "" tsdus) (Buffer.contents got);
  check "no TSDU abandoned" 0 (Socket.pending_streams w.a);
  checkb "a half closed" true
    (match Socket.state w.a with
    | Socket.Fin_wait_2 | Socket.Time_wait | Socket.Closed -> true
    | _ -> false);
  checkb "b saw the fin" true (Socket.state w.b = Socket.Close_wait)

let test_fin_rst_crossing () =
  (* a's data+FIN and b's crash cross in flight: a must end with a typed
     reset, not a hang, and both sides leave a clean clock. *)
  let w = make_world () in
  connect w;
  let fill m ~dst =
    Mem.poke_string m ~pos:dst "last words";
    None
  in
  (match Socket.send_message w.a ~len:10 ~fill with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send refused");
  Socket.close w.a;
  Socket.destroy w.b;
  Simclock.run_until_idle w.clock;
  checkb "typed reset, no hang" true
    (Socket.failure w.a = Some Socket.Connection_reset);
  check "a timers clean" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.a));
  check "b timers clean" 0
    (Simclock.pending_count w.clock ~owner:(Socket.timer_owner w.b))

let test_reset_for_shapes () =
  let module Ipv4 = Ilp_netsim.Ipv4 in
  let mk_dgram h =
    let h =
      { h with
        Tcp_header.checksum =
          Tcp_header.checksum h ~payload_acc:Ilp_checksum.Internet.empty
            ~payload_len:0 }
    in
    let seg = Tcp_header.to_string h in
    let ip = Ipv4.make ~protocol:6 ~src:1 ~dst:2 ~payload_len:(String.length seg) () in
    Datagram.create ~src_port:h.Tcp_header.src_port
      ~dst_port:h.Tcp_header.dst_port
      ~payload:(Ipv4.encapsulate ip seg)
  in
  let syn =
    mk_dgram
      (Tcp_header.make ~seq:500 ~ack:0 ~flags:Tcp_header.syn ~window:100
         ~checksum:0 ~urgent:0 ~src_port:77 ~dst_port:88 ())
  in
  (match Socket.reset_for syn with
  | None -> Alcotest.fail "SYN to a dead host must be reset"
  | Some r ->
      check "ports swapped (src)" 88 r.Datagram.src_port;
      check "ports swapped (dst)" 77 r.Datagram.dst_port;
      (match Ilp_netsim.Ipv4.decapsulate r.Datagram.payload with
      | Error e -> Alcotest.fail ("reset not valid IP: " ^ e)
      | Ok (_, seg) -> (
          match Tcp_header.of_string seg ~pos:0 with
          | Error e -> Alcotest.fail ("reset not valid TCP: " ^ e)
          | Ok h ->
              checkb "RST flag set" true (Tcp_header.has h Tcp_header.rst);
              check "SYN acknowledged" 501 h.Tcp_header.ack;
              (* Never reset a reset: no storms between two dead hosts. *)
              checkb "reset-of-reset suppressed" true
                (Socket.reset_for r = None))));
  checkb "malformed input ignored" true
    (Socket.reset_for
       (Datagram.create ~src_port:1 ~dst_port:2 ~payload:"garbage")
    = None)

(* ------------------------------------------------------------------ *)
(* v2 framed receive: {!Framing} prelude parsing, final placement of
   out-of-order segments, and the negotiation-mismatch guard rails *)

module Framing = Ilp_tcp.Framing
module Internet = Ilp_checksum.Internet

let test_framing_word0_roundtrip () =
  List.iter
    (fun p ->
      match Framing.parse_word0 (Framing.word0 ~prelude_len:p) with
      | Some got -> check (Printf.sprintf "prelude %d round trip" p) p got
      | None -> Alcotest.failf "prelude %d rejected its own word0" p)
    [ 8; 16; 64; 248 ];
  let rejected w = Framing.parse_word0 w = None in
  checkb "zero rejected" true (rejected 0);
  checkb "wrong magic rejected" true (rejected 0x494d5008);
  checkb "prelude 0 rejected" true (rejected (Framing.word0 ~prelude_len:8 land lnot 0xff));
  checkb "unaligned prelude rejected" true (rejected (0x494c5000 lor 12));
  checkb "short prelude rejected" true (rejected (0x494c5000 lor 4))

let test_framing_stream_layout () =
  (* The framed fill must write the prelude words at offset 0 and present
     the engine's ranges shifted by exactly one [seg_unit], with the
     positional checksum matching a flat walk over the framed bytes. *)
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  let stream_len = 96 and seg_unit = 8 in
  let body i = ((i * 37) + 5) land 0xff in
  let fill_range m ~dst ~off ~len =
    for i = 0 to len - 1 do
      Mem.poke_u8 m (dst + i) (body (off + i))
    done;
    let chunk = Bytes.init len (fun i -> Char.chr (body (off + i))) in
    Some (Internet.add_bytes Internet.empty chunk ~off:0 ~len)
  in
  let total, fill =
    Framing.framed_stream ~seg_unit ~stream_len ~checksummed:true ~fill_range
  in
  check "total = prelude + stream" (seg_unit + stream_len) total;
  (* Whole-TSDU fill at offset 0 (the single-segment shape). *)
  let acc0 = fill mem ~dst:256 ~off:0 ~len:total in
  check "magic word" (Framing.word0 ~prelude_len:seg_unit) (Mem.peek_u32 mem 256);
  check "engine length word" stream_len (Mem.peek_u32 mem 260);
  for i = 0 to stream_len - 1 do
    if Mem.peek_u8 mem (256 + seg_unit + i) <> body i then
      Alcotest.failf "engine byte %d not shifted by the prelude" i
  done;
  (match acc0 with
  | None -> Alcotest.fail "checksummed fill returned no accumulator"
  | Some acc ->
      let flat =
        Internet.checksum_mem mem ~pos:256 ~len:total ~acc:Internet.empty
      in
      check "positional accumulator = flat walk" (Internet.finish flat)
        (Internet.finish acc));
  (* A continuation range passes straight through, shifted. *)
  ignore (fill mem ~dst:1024 ~off:(seg_unit + 16) ~len:24);
  for i = 0 to 23 do
    if Mem.peek_u8 mem (1024 + i) <> body (16 + i) then
      Alcotest.failf "continuation byte %d mis-shifted" i
  done;
  checkb "undersized seg_unit rejected" true
    (try
       ignore (Framing.framed_stream ~seg_unit:4 ~stream_len ~checksummed:false
                 ~fill_range);
       false
     with Invalid_argument _ -> true)

(* A miniature engine for socket-level framed tests: XOR "encryption"
   with a charged byte-wise decrypt into a caller-owned application
   area — stateless per segment, like the real receive kernels. *)
let xor_key = 0x5a

let framed_world ?(jitter_us = 0.0) ?(seed = 11) ?(mss = 256)
    ?(send_buffer = Socket.default_config.Socket.send_buffer) ?mangle () =
  let w =
    match mangle with
    | Some m -> make_world ~jitter_us ~seed ~mss ~send_buffer ~ooo_slots:16 ~mangle:m ()
    | None -> make_world ~jitter_us ~seed ~mss ~send_buffer ~ooo_slots:16 ()
  in
  let app = Alloc.alloc w.sim.Sim.alloc 65536 in
  let handler m ~src ~dst_off ~len =
    if dst_off + len > 65536 then Error "overflow"
    else begin
      for i = 0 to len - 1 do
        Mem.set_u8 m (app + dst_off + i) (Mem.get_u8 m (src + i) lxor xor_key)
      done;
      Ok ()
    end
  in
  Socket.set_rx_processing w.b (Socket.Rx_separate handler);
  Socket.set_rx_framing w.b true;
  (w, app)

let framed_tsdu w payload =
  let stream_len = String.length payload in
  let fill_range m ~dst ~off ~len =
    for i = 0 to len - 1 do
      Mem.poke_u8 m (dst + i) (Char.code payload.[off + i] lxor xor_key)
    done;
    None
  in
  let total, fill =
    Framing.framed_stream ~seg_unit:8 ~stream_len ~checksummed:false ~fill_range
  in
  Socket.send_stream w.a ~seg_unit:8 ~len:total ~fill

let framed_all ?(step = 50.0) ?(guard = 200_000) w tsdus =
  let pending = Queue.of_seq (List.to_seq tsdus) in
  let g = ref guard and alive = ref true in
  while !alive && (not (Queue.is_empty pending)) && !g > 0 do
    decr g;
    match framed_tsdu w (Queue.peek pending) with
    | Ok () -> ignore (Queue.pop pending)
    | Error Socket.Buffer_full | Error Socket.Window_full ->
        Simclock.advance w.clock step
    | Error _ -> alive := false
  done;
  Simclock.run_until_idle w.clock

(* Collect each delivered TSDU's plaintext from the application area. *)
let collect_app w app buf =
  Socket.set_on_message w.b (fun ~src:_ ~len ->
      Buffer.add_bytes buf (Mem.peek_bytes w.sim.Sim.mem ~pos:app ~len))

let test_framed_stream_roundtrip () =
  let w, app = framed_world () in
  connect w;
  let got = Buffer.create 32768 in
  collect_app w app got;
  let tsdus = List.init 6 (fun k -> stream_payload (896 + (704 * k mod 2112)) k) in
  framed_all w tsdus;
  check_s "framed TSDUs decrypted in place, byte-exact"
    (String.concat "" tsdus) (Buffer.contents got);
  checkb "no abort" true (Socket.failure w.a = None && Socket.failure w.b = None);
  (* Every delivered byte of wire stream includes one prelude per TSDU. *)
  check "prelude bytes delivered too"
    (List.fold_left (fun a s -> a + String.length s + 8) 0 tsdus)
    (Socket.stats w.b).Socket.bytes_delivered

let test_framed_ooo_final_placement () =
  (* Heavy jitter reorders segments; with framing on, in-extent
     out-of-order segments must land at their final TSDU offset instead
     of the stash, and the drain must not re-copy them. *)
  let w, app = framed_world ~jitter_us:2000.0 ~seed:77 () in
  connect w;
  let got = Buffer.create 32768 in
  collect_app w app got;
  let payload = stream_payload 16_000 4 in
  framed_all w [ payload ];
  check_s "reordered framed stream byte-exact" payload (Buffer.contents got);
  let st = Socket.stats w.b in
  checkb "receiver saw out-of-order segments" true (st.Socket.out_of_order > 0);
  checkb "some were placed at their final offset" true (st.Socket.ooo_placed > 0);
  checkb "placements are a subset of the out-of-order count" true
    (st.Socket.ooo_placed <= st.Socket.out_of_order)

let test_framed_ooo_ring_wrap () =
  (* Many TSDUs through a send ring much smaller than the transfer, under
     jitter: placements must stay byte-exact while the ring cycles and
     segments straddle the wrap point. *)
  let w, app =
    framed_world ~jitter_us:1200.0 ~seed:31 ~mss:1000 ~send_buffer:8192 ()
  in
  connect w;
  let got = Buffer.create 65536 in
  collect_app w app got;
  let tsdus = List.init 12 (fun k -> stream_payload 4000 (100 + k)) in
  framed_all w tsdus;
  check_s "wrapped framed transfer byte-exact" (String.concat "" tsdus)
    (Buffer.contents got);
  checkb "send ring wrapped" true (Socket.ring_wraps w.a > 0);
  checkb "final placement exercised" true
    ((Socket.stats w.b).Socket.ooo_placed > 0);
  checkb "no abort" true (Socket.failure w.a = None)

let test_framed_corrupt_prelude_recovered () =
  (* Flip a byte inside the first data segment's prelude: the checksum
     verdict fails before any frame state is committed, the segment is
     dropped and its retransmission delivers the TSDU byte-exact. *)
  let data_seen = ref 0 in
  let mangle _ s =
    if String.length s > 100 then begin
      incr data_seen;
      if !data_seen = 1 then begin
        let b = Bytes.of_string s in
        let pos = String.length s - 60 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        Bytes.to_string b
      end
      else s
    end
    else s
  in
  let w, app = framed_world ~mangle () in
  connect w;
  let got = Buffer.create 8192 in
  collect_app w app got;
  let payload = stream_payload 3008 9 in
  framed_all w [ payload ];
  check_s "recovered byte-exact after corrupt first segment" payload
    (Buffer.contents got);
  let st = Socket.stats w.b in
  checkb "exactly the corrupt segment failed its checksum" true
    (st.Socket.checksum_failures = 1);
  checkb "sender retransmitted" true
    ((Socket.stats w.a).Socket.retransmissions > 0)

let test_framed_receiver_rejects_unframed_stream () =
  (* Negotiation mismatch: a framing-enabled receiver fed a v1 stream
     finds no magic in the first word and drops the segment as
     Bad_header — nothing is delivered and no frame state is wedged. *)
  let w, app = framed_world () in
  connect w;
  let got = Buffer.create 1024 in
  collect_app w app got;
  (match stream_tsdu w (stream_payload 600 3) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_stream refused: %s" (send_error_to_string e));
  for _ = 1 to 200 do
    Simclock.advance w.clock 1000.0
  done;
  check "nothing delivered" 0 (Buffer.length got);
  let bad_header =
    try List.assoc Socket.Bad_header (Socket.drops w.b) with Not_found -> 0
  in
  checkb "v1 stream dropped as Bad_header" true (bad_header > 0)

let test_framed_off_is_inert_under_raw () =
  (* [set_rx_framing] without an engine-backed handler must change
     nothing: Rx_raw reassembly stays byte-identical to the v1 path. *)
  let w = make_world ~max_tsdu:8192 () in
  Socket.set_rx_framing w.b true;
  connect w;
  let got = Buffer.create 8192 in
  collect_into w got;
  let payload = stream_payload 5000 6 in
  stream_all w [ payload ];
  check_s "raw path unchanged" payload (Buffer.contents got);
  check "no placements" 0 (Socket.stats w.b).Socket.ooo_placed

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tcp"
    [ ( "header",
        [ Alcotest.test_case "string round trip" `Quick test_header_string_roundtrip;
          Alcotest.test_case "decode bounds" `Quick test_header_decode_bounds;
          Alcotest.test_case "memory round trip" `Quick test_header_mem_roundtrip;
          Alcotest.test_case "flags" `Quick test_header_flags;
          Alcotest.test_case "checksum consistency" `Quick
            test_header_checksum_consistency ] );
      ( "ring",
        [ Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wrap waste" `Quick test_ring_wrap_waste;
          Alcotest.test_case "oversize" `Quick test_ring_reserve_too_big;
          Alcotest.test_case "release empty" `Quick test_ring_release_empty;
          qc prop_ring_fifo ] );
      ( "rto",
        [ Alcotest.test_case "defaults and sampling" `Quick test_rto_defaults_and_sampling;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "smoothing" `Quick test_rto_smoothing ] );
      ( "socket",
        [ Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "handshake under loss" `Quick test_handshake_under_loss;
          Alcotest.test_case "simple transfer" `Quick test_simple_transfer;
          Alcotest.test_case "transfer under loss" `Quick test_transfer_under_loss;
          Alcotest.test_case "reordering" `Quick test_transfer_with_reordering;
          Alcotest.test_case "duplication" `Quick test_transfer_with_duplication;
          Alcotest.test_case "corruption recovery" `Quick
            test_corruption_detected_and_recovered;
          Alcotest.test_case "truncation recovery" `Quick
            test_truncation_dropped_and_recovered;
          Alcotest.test_case "abort: handshake failed" `Quick
            test_abort_handshake_failed;
          Alcotest.test_case "abort: retry exhausted" `Quick
            test_abort_retry_exhausted;
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
          Alcotest.test_case "delayed acks" `Quick test_delayed_acks;
          Alcotest.test_case "send errors" `Quick test_send_errors;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "congestion window dynamics" `Quick
            test_congestion_window_dynamics;
          Alcotest.test_case "window never exceeded" `Quick
            test_window_never_exceeded;
          Alcotest.test_case "close sequence" `Quick test_close_sequence;
          qc prop_lossy_stream_integrity ] );
      ( "persist",
        [ Alcotest.test_case "probes back off" `Quick test_persist_probes_back_off;
          Alcotest.test_case "resumes exactly once on reopen" `Quick
            test_persist_resumes_once_on_reopen;
          Alcotest.test_case "stall deadline aborts Peer_stalled" `Quick
            test_persist_stall_deadline_aborts;
          Alcotest.test_case "window shrink below in-flight" `Quick
            test_window_shrink_below_in_flight ] );
      ( "stream",
        [ Alcotest.test_case "pipelined TSDU" `Quick test_stream_pipelined_tsdu;
          Alcotest.test_case "backpressure and ordering" `Quick
            test_stream_backpressure_and_ordering;
          Alcotest.test_case "ring wrap-around" `Quick test_stream_ring_wrap;
          Alcotest.test_case "impaired delivery grid" `Quick
            test_stream_impaired_delivery;
          Alcotest.test_case "reorder stash" `Quick test_stream_reorder_uses_stash;
          Alcotest.test_case "fast recovery" `Quick test_stream_fast_recovery;
          Alcotest.test_case "window shrink mid-flight" `Quick
            test_stream_window_shrink_mid_flight;
          Alcotest.test_case "metrics conservation" `Quick
            test_stream_metrics_conservation;
          Alcotest.test_case "tracing changes nothing" `Quick
            test_stream_tracing_changes_nothing ] );
      ( "sack",
        [ qc prop_sack_header_roundtrip;
          Alcotest.test_case "malformed options rejected" `Quick
            test_sack_option_malformed_rejected;
          Alcotest.test_case "ooo stash auto-sizing" `Quick test_ooo_autosize;
          Alcotest.test_case "multi-hole recovery without RTO" `Quick
            test_sack_multi_hole_recovery;
          Alcotest.test_case "scoreboard-vs-stash agreement grid" `Quick
            test_sack_impaired_grid_agreement;
          Alcotest.test_case "reneging tolerated via RTO" `Quick
            test_sack_reneging_rto_recovery;
          Alcotest.test_case "forged beyond-snd_nxt blocks rejected" `Quick
            test_sack_forged_beyond_sndnxt_rejected;
          Alcotest.test_case "overlapping blocks rejected" `Quick
            test_sack_overlapping_blocks_rejected;
          Alcotest.test_case "optimistic ack aborts Misbehaving_peer" `Quick
            test_optimistic_ack_aborts;
          Alcotest.test_case "ack division earns no window" `Quick
            test_ack_division_no_cwnd_inflation;
          Alcotest.test_case "dupack forgery bounded and D-SACKed" `Quick
            test_dupack_forgery_bounded;
          Alcotest.test_case "metrics conservation" `Quick
            test_sack_metrics_conservation;
          Alcotest.test_case "sack off is the NewReno baseline" `Quick
            test_sack_off_is_newreno ] );
      ( "framed receive",
        [ Alcotest.test_case "prelude word round trip" `Quick
            test_framing_word0_roundtrip;
          Alcotest.test_case "framed stream layout and checksum" `Quick
            test_framing_stream_layout;
          Alcotest.test_case "framed stream round trip" `Quick
            test_framed_stream_roundtrip;
          Alcotest.test_case "ooo final placement" `Quick
            test_framed_ooo_final_placement;
          Alcotest.test_case "placement across ring wrap" `Quick
            test_framed_ooo_ring_wrap;
          Alcotest.test_case "corrupt prelude recovered" `Quick
            test_framed_corrupt_prelude_recovered;
          Alcotest.test_case "unframed stream rejected" `Quick
            test_framed_receiver_rejects_unframed_stream;
          Alcotest.test_case "framing inert under Rx_raw" `Quick
            test_framed_off_is_inert_under_raw ] );
      ( "crash faults",
        [ Alcotest.test_case "RST on destroyed connection" `Quick
            test_rst_on_destroyed_connection;
          Alcotest.test_case "destroy cancels every timer" `Quick
            test_destroy_cancels_every_timer;
          Alcotest.test_case "abort cancels every timer" `Quick
            test_abort_cancels_every_timer;
          Alcotest.test_case "keepalive detects restart" `Quick
            test_keepalive_detects_restart;
          Alcotest.test_case "keepalive peer silent" `Quick
            test_keepalive_peer_silent;
          Alcotest.test_case "keepalive peer alive" `Quick
            test_keepalive_peer_alive_keeps_running;
          Alcotest.test_case "FIN behind queued stream TSDUs" `Quick
            test_fin_with_queued_stream_tsdus;
          Alcotest.test_case "FIN/RST crossing in flight" `Quick
            test_fin_rst_crossing;
          Alcotest.test_case "reset_for shapes" `Quick test_reset_for_shapes ] ) ]
