(* The complete measured system: end-to-end transfers for every cipher and
   mode, and the memory-behaviour invariants the paper's conclusions rest
   on. *)

open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine
module Linkage = Ilp_core.Linkage

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_setup ?(machine = Config.ss10_30) ?(cipher = Ft.Safer_simplified)
    ?(mode = Engine.Ilp) ?(copies = 2) ?(max_reply = 1024) ?(loss_rate = 0.0)
    ?(linkage = Linkage.Macro) ?(coalesce = false)
    ?(header_style = Engine.Leading) ?(rx_placement = Engine.Early)
    ?(uniform_units = false) ?(native = false) () =
  { (Ft.default_setup ~machine ~mode) with
    Ft.cipher;
    copies;
    max_reply;
    loss_rate;
    linkage;
    coalesce_writes = coalesce;
    header_style;
    rx_placement;
    uniform_units;
    native }

let run s =
  let r = Ft.run s in
  (match r.Ft.error with
  | Some e when not r.Ft.ok -> Alcotest.failf "transfer failed: %s" e
  | _ -> ());
  checkb "verified" true r.Ft.ok;
  r

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_deterministic () =
  let a = Ilp_app.Workload.generate ~len:1000 ~seed:5 in
  let b = Ilp_app.Workload.generate ~len:1000 ~seed:5 in
  let c = Ilp_app.Workload.generate ~len:1000 ~seed:6 in
  checkb "same seed same bytes" true (String.equal a b);
  checkb "different seed different bytes" false (String.equal a c);
  check "length" 1000 (String.length a);
  check "paper file" (15 * 1024) Ilp_app.Workload.paper_file_len

let test_workload_install () =
  let sim = Sim.create (Config.custom ()) in
  let s = Ilp_app.Workload.generate ~len:100 ~seed:1 in
  let addr = Ilp_app.Workload.install sim s in
  Alcotest.(check string)
    "installed" s
    (Bytes.to_string (Mem.peek_bytes sim.Sim.mem ~pos:addr ~len:100))

(* ------------------------------------------------------------------ *)
(* End-to-end matrix *)

let test_matrix () =
  List.iter
    (fun cipher ->
      List.iter
        (fun mode ->
          let r = run (small_setup ~cipher ~mode ~copies:1 ()) in
          check "all payload delivered" (15 * 1024) r.Ft.payload_bytes)
        [ Engine.Ilp; Engine.Separate ])
    [ Ft.Safer_simplified; Ft.Simple_encryption; Ft.Safer_full 6; Ft.Des ]

let test_native_backend_end_to_end () =
  (* The whole protocol — TCP checksum verification included — must work
     when the data manipulations run on the native fast path, in both
     modes and for both a SWAR and a table-driven cipher. *)
  List.iter
    (fun cipher ->
      List.iter
        (fun mode ->
          let r = run (small_setup ~cipher ~mode ~native:true ~copies:1 ()) in
          check "all payload delivered" (15 * 1024) r.Ft.payload_bytes;
          check "no checksum failures" 0 r.Ft.checksum_failures)
        [ Engine.Ilp; Engine.Separate ])
    [ Ft.Simple_encryption; Ft.Safer_simplified ]

let test_under_loss () =
  let r = run (small_setup ~loss_rate:0.2 ~copies:3 ()) in
  checkb "retransmissions occurred" true (r.Ft.retransmissions > 0);
  check "no checksum failures without corruption" 0 r.Ft.checksum_failures

let test_trailer_style () =
  let r = run (small_setup ~header_style:Engine.Trailer ()) in
  check "all payload delivered" (2 * 15 * 1024) r.Ft.payload_bytes

let test_function_call_linkage_runs () =
  let r = run (small_setup ~linkage:Linkage.function_calls ()) in
  check "all payload delivered" (2 * 15 * 1024) r.Ft.payload_bytes

let test_packet_sizes () =
  List.iter
    (fun max_reply ->
      let r = run (small_setup ~copies:1 ~max_reply ()) in
      check
        (Printf.sprintf "payload for %d" max_reply)
        (15 * 1024) r.Ft.payload_bytes)
    [ 256; 512; 768; 1280; 100; 17 ]

let test_streaming_replies () =
  (* [mss = Some m] smaller than a reply forces every reply through
     [Socket.send_stream] — segmented, pipelined, reassembled — and the
     transfer must still verify byte-exact.  The registry's
     engine.stream_fills counter witnesses that the per-segment fused
     range fills actually ran. *)
  let module M = Ilp_obs.Metrics in
  let before = M.snapshot M.default in
  let r =
    run { (small_setup ~copies:1 ~max_reply:1024 ()) with Ft.mss = Some 256 }
  in
  check "all payload delivered" (15 * 1024) r.Ft.payload_bytes;
  check "no checksum failures" 0 r.Ft.checksum_failures;
  let after = M.snapshot M.default in
  checkb "replies travelled as fused per-segment range fills" true
    (M.counter_diff after before "engine.stream_fills" > 0)

(* ------------------------------------------------------------------ *)
(* The paper's memory-behaviour claims as invariants *)

let pair_runs ?cipher () =
  let ilp = run (small_setup ?cipher ~mode:Engine.Ilp ~copies:4 ()) in
  let non = run (small_setup ?cipher ~mode:Engine.Separate ~copies:4 ()) in
  (ilp, non)

let test_ilp_reduces_memory_accesses () =
  let ilp, non = pair_runs () in
  let total (r : Ft.result) k = Stats.accesses r.Ft.total_stats k in
  checkb "fewer reads" true (total ilp Stats.Read < total non Stats.Read);
  checkb "fewer writes" true (total ilp Stats.Write < total non Stats.Write);
  (* "up to 30%": at least 15% fewer in our configuration. *)
  let reduction =
    1.0
    -. (float_of_int (total ilp Stats.Read + total ilp Stats.Write)
        /. float_of_int (total non Stats.Read + total non Stats.Write))
  in
  checkb "substantial reduction" true (reduction > 0.15)

let test_ilp_receive_miss_ratio_rises () =
  (* Section 4.2: with the simplified SAFER, the receive-side D-cache miss
     ratio rises sharply under ILP (4.7% -> 18.7% in the paper). *)
  let ilp, non = pair_runs () in
  let ratio (r : Ft.result) = Stats.data_miss_ratio r.Ft.recv_stats in
  checkb "ILP ratio much higher" true (ratio ilp > 2.0 *. ratio non);
  (* And the cause is 1-byte write misses. *)
  let byte_miss (r : Ft.result) =
    Stats.misses_of_size r.Ft.recv_stats Stats.Write ~size:1 ~level:1
  in
  checkb "byte-write misses explode" true (byte_miss ilp > 10 * max 1 (byte_miss non))

let test_simple_encryption_no_miss_explosion () =
  (* With the table-free word-oriented cipher the pathology disappears. *)
  let ilp, non = pair_runs ~cipher:Ft.Simple_encryption () in
  let wm (r : Ft.result) = Stats.misses r.Ft.recv_stats Stats.Write ~level:1 in
  checkb "ILP write misses do not explode" true (wm ilp < 2 * max 1 (wm non))

let test_ilp_faster_both_paths () =
  let ilp, non = pair_runs () in
  checkb "send faster" true (Ft.mean ilp.Ft.send_us < Ft.mean non.Ft.send_us);
  checkb "recv faster" true (Ft.mean ilp.Ft.recv_us < Ft.mean non.Ft.recv_us)

let test_function_calls_lose_the_benefit () =
  (* Section 3.2.1: substituting macros by function calls loses the ILP
     gain. *)
  let non = run (small_setup ~mode:Engine.Separate ~copies:4 ()) in
  let calls =
    run (small_setup ~mode:Engine.Ilp ~linkage:Linkage.function_calls ~copies:4 ())
  in
  let macro = run (small_setup ~mode:Engine.Ilp ~copies:4 ()) in
  let proc (r : Ft.result) = Ft.mean r.Ft.send_us +. Ft.mean r.Ft.recv_us in
  let gain_macro = (proc non -. proc macro) /. proc non in
  let gain_calls = (proc non -. proc calls) /. proc non in
  checkb "macro gain substantial" true (gain_macro > 0.10);
  checkb "call gain mostly gone" true (gain_calls < 0.5 *. gain_macro)

let test_coalesced_stores_cut_write_misses () =
  (* Section 2.2: sizing stores to Le removes the per-byte write misses. *)
  let plain = run (small_setup ~mode:Engine.Ilp ~copies:4 ()) in
  let lcm = run (small_setup ~mode:Engine.Ilp ~coalesce:true ~copies:4 ()) in
  let wm (r : Ft.result) = Stats.misses r.Ft.recv_stats Stats.Write ~level:1 in
  checkb "LCM stores cut receive write misses by >2x" true (2 * wm lcm < wm plain)

let test_no_l2_machine_slower () =
  (* Two machines identical except for the second-level cache: dropping
     the L2 must cost cycles (the SS10-30 effect). *)
  let base = Config.ss10_41 in
  let without = { base with Config.name = "SS10-41-noL2"; l2 = None } in
  let r_with = run (small_setup ~machine:base ()) in
  let r_without =
    let s = small_setup ~machine:without () in
    let r = Ft.run s in
    checkb "verified" true r.Ft.ok;
    r
  in
  let proc (r : Ft.result) = Ft.mean r.Ft.recv_us +. Ft.mean r.Ft.send_us in
  checkb "missing L2 costs time" true (proc r_without > proc r_with)

let test_late_placement_end_to_end () =
  (* Section 3.2.3: deferring the manipulations to delivery time still
     transfers correctly and costs about the same (the separate checksum
     pass is offset by the dropped tap and lower register pressure). *)
  let early = run (small_setup ()) in
  let late = run (small_setup ~rx_placement:Engine.Late ()) in
  check "all payload delivered" (2 * 15 * 1024) late.Ft.payload_bytes;
  let r (x : Ft.result) = Ft.mean x.Ft.recv_us in
  checkb "receive times within 10%" true
    (Float.abs (r late -. r early) /. r early < 0.10)

let test_uniform_units () =
  (* Section 5: uniform unit sizes transfer correctly and shave the
     per-invocation dispatch. *)
  let mixed = run (small_setup ()) in
  let uniform = run (small_setup ~uniform_units:true ()) in
  check "all payload delivered" (2 * 15 * 1024) uniform.Ft.payload_bytes;
  checkb "uniform units are no slower" true
    (Ft.mean uniform.Ft.send_us <= Ft.mean mixed.Ft.send_us +. 0.5)

let test_stall_accounting () =
  let r = run (small_setup ()) in
  checkb "stall time measured" true (r.Ft.send_stall_us > 0.0 && r.Ft.recv_stall_us > 0.0);
  checkb "stall below total machine time" true
    (r.Ft.send_stall_us +. r.Ft.recv_stall_us < r.Ft.total_machine_us);
  checkb "ifetch stall non-negative" true (r.Ft.ifetch_stall_us >= 0.0)

let test_des_much_slower_than_simplified () =
  (* The paper's reason for simplifying SAFER: realistic ciphers drown the
     stack. *)
  let des = run (small_setup ~cipher:Ft.Des ~copies:1 ()) in
  let simplified = run (small_setup ~cipher:Ft.Safer_simplified ~copies:1 ()) in
  checkb "DES dominates processing" true
    (Ft.mean des.Ft.send_us > 3.0 *. Ft.mean simplified.Ft.send_us)

(* ------------------------------------------------------------------ *)
(* Data path: at the application level the pooled single-copy path must
   be observationally identical to the legacy allocating path — same
   payload, same wire traffic, same simulated time — and leak-free. *)

let with_data_path s data_path = { s with Ft.data_path }

let test_data_path_end_to_end_equivalent () =
  List.iter
    (fun (mode, header_style) ->
      let base = small_setup ~mode ~header_style ~copies:1 () in
      let pooled = run (with_data_path base Engine.Pooled) in
      let legacy = run (with_data_path base Engine.Legacy) in
      check "same payload" legacy.Ft.payload_bytes pooled.Ft.payload_bytes;
      check "same wire bytes" legacy.Ft.wire_bytes pooled.Ft.wire_bytes;
      checkb "identical simulated time" true
        (legacy.Ft.total_machine_us = pooled.Ft.total_machine_us);
      check "pooled run leaks nothing" 0 pooled.Ft.pool_leaks;
      check "legacy run leaks nothing" 0 legacy.Ft.pool_leaks)
    [ (Engine.Ilp, Engine.Leading);
      (Engine.Ilp, Engine.Trailer);
      (Engine.Separate, Engine.Leading) ]

let test_data_path_equivalent_under_chaos () =
  let imp =
    { Ilp_netsim.Link.fault_free with
      Ilp_netsim.Link.loss_rate = 0.15;
      corrupt_rate = 0.05;
      dup_rate = 0.05 }
  in
  let base =
    { (small_setup ~copies:2 ()) with
      Ft.impairments = Some imp;
      deadline_us = 60_000_000.0 }
  in
  let pooled = run (with_data_path base Engine.Pooled) in
  let legacy = run (with_data_path base Engine.Legacy) in
  checkb "chaos actually bit (retransmissions)" true
    (pooled.Ft.retransmissions > 0);
  check "same payload under chaos" legacy.Ft.payload_bytes
    pooled.Ft.payload_bytes;
  check "same wire bytes under chaos" legacy.Ft.wire_bytes pooled.Ft.wire_bytes;
  check "no leaks under chaos" 0 pooled.Ft.pool_leaks

let test_data_path_pool_exhaustion_end_to_end () =
  (* A cap-0 shared pool recycles nothing: every acquire falls back to a
     fresh allocation, and the transfer must neither fail nor leak. *)
  let pool = Ilp_fastpath.Pool.create ~class_cap:0 () in
  let r =
    run
      { (small_setup ~copies:1 ()) with
        Ft.data_path = Engine.Pooled;
        pool = Some pool }
  in
  check "all payload delivered on fallback" (15 * 1024) r.Ft.payload_bytes;
  let s = Ilp_fastpath.Pool.stats pool in
  checkb "fallback allocated fresh" true (s.Ilp_fastpath.Pool.fresh_allocs > 0);
  checkb "nothing recycled at cap 0" true
    (s.Ilp_fastpath.Pool.fresh_allocs = s.Ilp_fastpath.Pool.acquired);
  check "shared pool balanced" 0 (Ilp_fastpath.Pool.outstanding pool)

(* ------------------------------------------------------------------ *)
(* The v2 ("Reverso") framed receive: negotiated end-to-end, byte-exact,
   and able to land out-of-order segments at their final TSDU offset. *)

let with_framing s = { s with Ft.framing = true }

let test_framed_transfer_matrix () =
  (* Framing must deliver byte-exact across modes, backends and data
     paths, both with whole-message replies and pipelined streaming. *)
  List.iter
    (fun (mode, native, data_path, mss) ->
      let s =
        { (small_setup ~mode ~native ~copies:1 ()) with
          Ft.framing = true;
          data_path;
          mss }
      in
      let r = run s in
      check "all payload delivered" (15 * 1024) r.Ft.payload_bytes;
      check "no checksum failures" 0 r.Ft.checksum_failures;
      check "no pool leaks" 0 r.Ft.pool_leaks)
    [ (Engine.Ilp, false, Engine.Pooled, None);
      (Engine.Ilp, false, Engine.Legacy, Some 256);
      (Engine.Ilp, true, Engine.Pooled, Some 256);
      (Engine.Separate, false, Engine.Pooled, Some 256);
      (Engine.Separate, true, Engine.Pooled, None) ]

let test_framed_equals_unframed_payload () =
  (* Same application bytes either way; the framed wire carries the
     preludes on top (one seg_unit per reply TSDU). *)
  let base = { (small_setup ~copies:1 ()) with Ft.mss = Some 256 } in
  let plain = run base in
  let framed = run (with_framing base) in
  check "same payload" plain.Ft.payload_bytes framed.Ft.payload_bytes;
  checkb "framed wire strictly larger (preludes)" true
    (framed.Ft.wire_bytes > plain.Ft.wire_bytes);
  check "prelude overhead is one seg_unit per reply"
    (framed.Ft.wire_bytes - plain.Ft.wire_bytes)
    (framed.Ft.n_replies * 8)

let test_framed_ooo_final_placement () =
  (* A jittery wire reorders pipelined segments; with framing on, the
     receiver must land them at their final TSDU offset (witnessed by
     the tcp.ooo_placed counter) and still verify byte-exact. *)
  let module M = Ilp_obs.Metrics in
  let imp =
    { Ilp_netsim.Link.fault_free with
      Ilp_netsim.Link.jitter_us = 120.0;
      delay_spike_rate = 0.2;
      delay_spike_us = 600.0 }
  in
  let before = M.snapshot M.default in
  let r =
    run
      { (small_setup ~copies:2 ()) with
        Ft.framing = true;
        mss = Some 256;
        impairments = Some imp;
        deadline_us = 60_000_000.0 }
  in
  check "all payload delivered" (2 * 15 * 1024) r.Ft.payload_bytes;
  check "no pool leaks" 0 r.Ft.pool_leaks;
  let after = M.snapshot M.default in
  checkb "out-of-order segments landed at final placement" true
    (M.counter_diff after before "tcp.ooo_placed" > 0)

let test_framed_under_chaos () =
  (* Loss, corruption and duplication against the framed receive: the
     transfer must still be byte-exact (corrupt preludes rejected by the
     segment checksum, retransmissions recovering), and must agree with
     the unframed run on payload. *)
  let imp =
    { Ilp_netsim.Link.fault_free with
      Ilp_netsim.Link.loss_rate = 0.15;
      corrupt_rate = 0.05;
      dup_rate = 0.05;
      jitter_us = 100.0 }
  in
  let base =
    { (small_setup ~copies:2 ()) with
      Ft.mss = Some 256;
      impairments = Some imp;
      deadline_us = 60_000_000.0 }
  in
  let framed = run (with_framing base) in
  let plain = run base in
  checkb "chaos actually bit (retransmissions)" true
    (framed.Ft.retransmissions > 0);
  check "same payload under chaos" plain.Ft.payload_bytes
    framed.Ft.payload_bytes;
  check "no leaks under chaos" 0 framed.Ft.pool_leaks

let test_framed_crc_trailer_sack_interplay () =
  (* The end-to-end CRC32 trailer, SACK loss recovery and the framed
     receive all stack: a lossy, jittery wire forces SACK-driven hole
     retransmissions while every delivered TSDU still verifies its
     trailer behind the framing prelude. *)
  let imp =
    { Ilp_netsim.Link.fault_free with
      Ilp_netsim.Link.loss_rate = 0.12;
      jitter_us = 150.0 }
  in
  let base =
    { (small_setup ~copies:2 ()) with
      Ft.crc = true;
      mss = Some 256;
      impairments = Some imp;
      deadline_us = 60_000_000.0 }
  in
  let framed = run (with_framing base) in
  let plain = run base in
  checkb "framed transfer completed" true framed.Ft.ok;
  check "same payload with trailer + framing" plain.Ft.payload_bytes
    framed.Ft.payload_bytes;
  checkb "loss actually bit (retransmissions)" true
    (framed.Ft.retransmissions > 0);
  check "no pool leaks" 0 framed.Ft.pool_leaks;
  (* The trailer rides inside the engine TSDU, so the framed overhead is
     still exactly one prelude per reply. *)
  check "prelude overhead unchanged by the trailer"
    (framed.Ft.wire_bytes - plain.Ft.wire_bytes)
    (framed.Ft.n_replies * 8)

(* ------------------------------------------------------------------ *)
(* Adversarial wire and the soak harness *)

let test_fault_free_impairments_unchanged () =
  (* Routing the transfer through the impairment model with fault_free
     settings must reproduce the legacy run exactly: same bytes, same
     timings, same counters. *)
  let legacy = run (small_setup ~copies:1 ()) in
  let via =
    run
      { (small_setup ~copies:1 ()) with
        Ft.impairments = Some Ilp_netsim.Link.fault_free }
  in
  check "same payload" legacy.Ft.payload_bytes via.Ft.payload_bytes;
  check "same wire bytes" legacy.Ft.wire_bytes via.Ft.wire_bytes;
  check "same retransmissions (none)" 0 via.Ft.retransmissions;
  checkb "same machine time" true
    (legacy.Ft.total_machine_us = via.Ft.total_machine_us);
  checkb "clean drop ledger" true
    (List.for_all (fun (_, n) -> n = 0) via.Ft.drops)

let test_transfer_reports_typed_error_under_chaos () =
  (* A wire hostile enough to kill the transfer must yield a typed error,
     not a hang or an exception. *)
  let imp =
    { Ilp_netsim.Link.fault_free with
      Ilp_netsim.Link.loss_rate = 0.9; corrupt_rate = 0.5 }
  in
  let r =
    Ft.run
      { (small_setup ~copies:1 ()) with
        Ft.impairments = Some imp;
        deadline_us = 10_000_000.0 }
  in
  checkb "not ok" false r.Ft.ok;
  checkb "typed error present" true (r.Ft.error <> None)

let soak_smoke cfg =
  let o = Ilp_app.Soak.run cfg in
  check "all iterations accounted" cfg.Ilp_app.Soak.iterations
    (o.Ilp_app.Soak.completed + o.Ilp_app.Soak.failed
    + o.Ilp_app.Soak.escaped_exceptions + o.Ilp_app.Soak.silent_corruptions);
  checkb "invariants hold" true (Ilp_app.Soak.invariants_hold o);
  o

let test_soak_smoke () =
  let cfg =
    { Ilp_app.Soak.default_config with
      Ilp_app.Soak.iterations = 48;
      file_len = 256;
      max_reply = 128 }
  in
  let o = soak_smoke cfg in
  checkb "chaos actually bit" true
    (o.Ilp_app.Soak.link.Ilp_netsim.Link.corrupted > 0
    && o.Ilp_app.Soak.link.Ilp_netsim.Link.dropped > 0);
  checkb "some transfers survived" true (o.Ilp_app.Soak.completed > 0)

let test_soak_deterministic () =
  let cfg =
    { Ilp_app.Soak.default_config with
      Ilp_app.Soak.iterations = 16;
      file_len = 256;
      max_reply = 128 }
  in
  let o1 = soak_smoke cfg in
  let o2 = soak_smoke cfg in
  checkb "same seed, same outcome" true (o1 = o2);
  let o3 = soak_smoke { cfg with Ilp_app.Soak.seed = 2 } in
  checkb "different seed, different ledger" true
    (o1.Ilp_app.Soak.link <> o3.Ilp_app.Soak.link)

let test_overload_soak_smoke () =
  let module Soak = Ilp_app.Soak in
  let cfg = { Soak.default_overload_config with Soak.file_len = 1024 } in
  let o = Soak.run_overload cfg in
  checkb "graceful-degradation invariants hold" true
    (Soak.overload_invariants_hold o);
  check "every client classified" cfg.Soak.clients
    (o.Soak.completed + o.Soak.typed_failures + o.Soak.silent_outcomes);
  checkb "honest majority completed" true (o.Soak.completed >= 6);
  checkb "misbehaving clients got typed outcomes" true (o.Soak.typed_failures >= 2);
  checkb "zero-window machinery exercised" true (o.Soak.persist_probes > 0);
  checkb "dead reader aborted Peer_stalled" true (o.Soak.peer_stalled_aborts >= 1);
  checkb "budget ceiling respected" true
    (o.Soak.peak_queued_bytes <= o.Soak.queue_cap);
  (* Deterministic under a fixed seed. *)
  let o2 = Soak.run_overload cfg in
  checkb "same seed, same outcome" true (o = o2)

let test_crash_soak_smoke () =
  let module Soak = Ilp_app.Soak in
  let cfg =
    { Soak.default_crash_config with Soak.transfers = 8; file_len = 1024 }
  in
  let o = Soak.run_crash cfg in
  checkb "fault-model invariants hold" true (Soak.crash_invariants_hold o);
  check "every transfer classified" cfg.Soak.transfers
    (o.Soak.completed + o.Soak.typed_failures + o.Soak.silent_outcomes);
  checkb "crashes actually happened" true (o.Soak.crashes > 0);
  checkb "some transfer resumed across a restart" true
    (o.Soak.resumed_completed > 0);
  check "never restarted from byte zero" 0 o.Soak.restarts_from_zero;
  check "no stale timers after any crash" 0 o.Soak.stale_timers;
  check "dedup ledger conserved" 0 o.Soak.dedup_violations;
  check "pool balanced" 0 o.Soak.pool_leaks;
  (* Deterministic under a fixed seed. *)
  let o2 = Soak.run_crash cfg in
  checkb "same seed, same outcome" true (o = o2)

let test_overload_lying_receiver () =
  (* The lying-receiver persona forges SACK feedback through the link's
     tamper hook; every forgery must be either rejected (and counted) by
     the server's SACK validation or answered with a typed
     Misbehaving_peer abort — and its own transfer must still be
     byte-exact or typed, never silently wrong. *)
  let module Soak = Ilp_app.Soak in
  let cfg = { Soak.default_overload_config with Soak.file_len = 2048 } in
  let o = Soak.run_overload cfg in
  checkb "graceful-degradation invariants hold" true
    (Soak.overload_invariants_hold o);
  checkb "the lying receiver actually forged acks" true (o.Soak.forged_acks > 0);
  checkb "forged feedback was rejected or typed-aborted" true
    (o.Soak.forged_rejections > 0);
  checkb "no forgery went unpunished" false o.Soak.forgery_unpunished

let () =
  Alcotest.run "app"
    [ ( "workload",
        [ Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "install" `Quick test_workload_install ] );
      ( "end-to-end",
        [ Alcotest.test_case "cipher x mode matrix" `Slow test_matrix;
          Alcotest.test_case "native backend end-to-end" `Quick
            test_native_backend_end_to_end;
          Alcotest.test_case "under loss" `Quick test_under_loss;
          Alcotest.test_case "trailer style" `Quick test_trailer_style;
          Alcotest.test_case "function-call linkage" `Quick
            test_function_call_linkage_runs;
          Alcotest.test_case "packet sizes" `Slow test_packet_sizes;
          Alcotest.test_case "streaming replies" `Quick test_streaming_replies ] );
      ( "paper invariants",
        [ Alcotest.test_case "ILP reduces memory accesses" `Quick
            test_ilp_reduces_memory_accesses;
          Alcotest.test_case "receive miss ratio rises" `Quick
            test_ilp_receive_miss_ratio_rises;
          Alcotest.test_case "simple encryption: no explosion" `Quick
            test_simple_encryption_no_miss_explosion;
          Alcotest.test_case "ILP faster on both paths" `Quick test_ilp_faster_both_paths;
          Alcotest.test_case "function calls lose the benefit" `Quick
            test_function_calls_lose_the_benefit;
          Alcotest.test_case "LCM stores cut write misses" `Quick
            test_coalesced_stores_cut_write_misses;
          Alcotest.test_case "no-L2 machine pays more cycles" `Quick
            test_no_l2_machine_slower;
          Alcotest.test_case "late placement" `Quick test_late_placement_end_to_end;
          Alcotest.test_case "uniform units" `Quick test_uniform_units;
          Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
          Alcotest.test_case "DES dominates" `Quick test_des_much_slower_than_simplified ] );
      ( "data path",
        [ Alcotest.test_case "pooled = legacy end to end" `Quick
            test_data_path_end_to_end_equivalent;
          Alcotest.test_case "pooled = legacy under chaos" `Quick
            test_data_path_equivalent_under_chaos;
          Alcotest.test_case "pool exhaustion fallback end to end" `Quick
            test_data_path_pool_exhaustion_end_to_end ] );
      ( "framed receive",
        [ Alcotest.test_case "framed transfer matrix" `Quick
            test_framed_transfer_matrix;
          Alcotest.test_case "framed = unframed payload" `Quick
            test_framed_equals_unframed_payload;
          Alcotest.test_case "ooo final placement" `Quick
            test_framed_ooo_final_placement;
          Alcotest.test_case "framed under chaos" `Quick
            test_framed_under_chaos;
          Alcotest.test_case "crc trailer + sack interplay" `Quick
            test_framed_crc_trailer_sack_interplay ] );
      ( "adversarial",
        [ Alcotest.test_case "fault-free impairments unchanged" `Quick
            test_fault_free_impairments_unchanged;
          Alcotest.test_case "typed error under chaos" `Quick
            test_transfer_reports_typed_error_under_chaos;
          Alcotest.test_case "soak smoke" `Slow test_soak_smoke;
          Alcotest.test_case "soak determinism" `Quick test_soak_deterministic;
          Alcotest.test_case "overload soak smoke" `Slow test_overload_soak_smoke;
          Alcotest.test_case "lying receiver punished" `Slow
            test_overload_lying_receiver;
          Alcotest.test_case "crash soak smoke" `Slow test_crash_soak_smoke ] ) ]
