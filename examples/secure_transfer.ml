(* A "production" configuration: the real SAFER K-64 (6 rounds, the
   published algorithm, test-vector-exact), a lossy reordering network,
   and the section 5 trailer framing — the protocol-design variant the
   paper recommends for ILP-friendliness.

   Run with: dune exec examples/secure_transfer.exe *)

open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine

let run name setup =
  let r = Ft.run setup in
  Printf.printf "%-34s %s  send %.0f us  recv %.0f us  rexmit %d\n" name
    (if r.Ft.ok then "ok " else "BAD")
    (Ft.mean r.Ft.send_us) (Ft.mean r.Ft.recv_us) r.Ft.retransmissions;
  r

let () =
  print_endline "secure transfer: full SAFER K-64 over a lossy link (SS20-60)\n";
  let base =
    { (Ft.default_setup ~machine:Config.ss20_60 ~mode:Engine.Ilp) with
      Ft.cipher = Ft.Safer_full 6;
      copies = 4;
      loss_rate = 0.05;
      seed = 2026 }
  in
  let ilp = run "ILP, leading length field" base in
  let non = run "non-ILP" { base with Ft.mode = Engine.Separate } in
  let trailer = run "ILP, trailer length field" { base with Ft.header_style = Engine.Trailer } in
  ignore trailer;
  let proc (r : Ft.result) = Ft.mean r.Ft.send_us +. Ft.mean r.Ft.recv_us in
  Printf.printf
    "\nILP gain with the REAL cipher: %.0f%% — compare ~20%% with the\n\
     simplified one.  A 6-round byte-oriented block cipher costs ~10x the\n\
     rest of the stack, so integrating the loops saves a fixed amount that\n\
     shrinks relative to total time (the paper's section 4.1 point, and\n\
     why DES experiments showed no ILP gain at all).\n"
    (100.0 *. (1.0 -. (proc ilp /. proc non)));
  (* Every byte was decrypted, unmarshalled and verified against the
     original file despite 5% datagram loss. *)
  Printf.printf "bytes verified end-to-end: %d (x%d copies), loss recovered by TCP\n"
    ilp.Ft.payload_bytes (base.Ft.copies)
