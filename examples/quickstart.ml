(* Quickstart: transfer a file over the full stack — marshalling,
   encryption, user-level TCP — on a simulated SPARCstation 10-30, in
   both implementation styles, and print what the paper's figures are
   made of.

   Run with: dune exec examples/quickstart.exe *)

open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine

let describe name (r : Ft.result) =
  Printf.printf "%-28s %s\n" (name ^ ":")
    (if r.Ft.ok then "transfer complete, every byte verified" else "FAILED");
  Printf.printf "  replies            %d messages, %d payload bytes\n" r.Ft.n_replies
    r.Ft.payload_bytes;
  Printf.printf "  send processing    %.1f us per 1 kB packet\n" (Ft.mean r.Ft.send_us);
  Printf.printf "  recv processing    %.1f us per 1 kB packet\n" (Ft.mean r.Ft.recv_us);
  Printf.printf "  memory reads       %d\n" (Stats.accesses r.Ft.total_stats Stats.Read);
  Printf.printf "  memory writes      %d\n" (Stats.accesses r.Ft.total_stats Stats.Write);
  Printf.printf "  recv D-cache miss  %.1f%%\n\n"
    (100.0 *. Stats.data_miss_ratio r.Ft.recv_stats)

let () =
  print_endline "Integrated Layer Processing quickstart";
  print_endline "(Braun & Diot, SIGCOMM 1995, reproduced in simulation)\n";
  let machine = Config.ss10_30 in
  Printf.printf "machine: %s, %.0f MHz, %d kB L1D, %s L2\n\n" machine.Config.name
    machine.Config.clock_mhz
    (machine.Config.l1d.Cache.size / 1024)
    (match machine.Config.l2 with Some _ -> "with" | None -> "no");
  (* The conventional layered implementation: marshal, encrypt, copy,
     checksum — one pass each (figure 3, left). *)
  let non_ilp = Ft.run (Ft.default_setup ~machine ~mode:Engine.Separate) in
  describe "non-ILP (layered)" non_ilp;
  (* The integrated implementation: one loop does it all (figure 3,
     right). *)
  let ilp = Ft.run (Ft.default_setup ~machine ~mode:Engine.Ilp) in
  describe "ILP (integrated)" ilp;
  let gain path a b =
    Printf.printf "ILP %s gain: %.0f%%\n" path (100.0 *. (1.0 -. (b /. a)))
  in
  gain "send" (Ft.mean non_ilp.Ft.send_us) (Ft.mean ilp.Ft.send_us);
  gain "receive" (Ft.mean non_ilp.Ft.recv_us) (Ft.mean ilp.Ft.recv_us);
  print_endline "\nNote the paper's central surprise: ILP wins by touching memory";
  print_endline "less, yet its cache MISS RATIO is higher than the careful layered";
  print_endline "implementation's (compare the 'recv D-cache miss' lines above)."
