(* Cache sensitivity: how the ILP gain depends on the machine.

   The paper's section 4.2 explains its timing results through the memory
   hierarchy.  This example makes that knob explicit: it runs the same
   file transfer on synthetic machines sweeping the data-cache size and
   the presence of a second-level cache, printing how the ILP advantage
   and the miss ratios move.

   Run with: dune exec examples/cache_explorer.exe *)

open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine

let machine ~l1d_kb ~with_l2 =
  let l1d : Cache.config =
    { size = l1d_kb * 1024; line = 32; assoc = 4;
      write_policy = Cache.Write_through; write_allocate = false }
  in
  let l1i : Cache.config =
    { size = 20 * 1024; line = 64; assoc = 5;
      write_policy = Cache.Write_back; write_allocate = true }
  in
  let l2 =
    if with_l2 then
      Some
        { Cache.size = 1024 * 1024; line = 128; assoc = 1;
          write_policy = Cache.Write_back; write_allocate = true }
    else None
  in
  Config.custom
    ~name:(Printf.sprintf "%dkB%s" l1d_kb (if with_l2 then "+L2" else ""))
    ~clock_mhz:36.0 ~l1d ~l1i ~l2 ~l2_hit_ns:150.0 ~mem_ns:420.0
    ~store_buffer_ns:40.0 ()

let run machine mode =
  let r = Ft.run { (Ft.default_setup ~machine ~mode) with Ft.copies = 4 } in
  if not r.Ft.ok then failwith "transfer failed";
  r

let () =
  print_endline "ILP gain vs cache geometry (simplified SAFER, 1 kB packets)\n";
  Printf.printf "%-10s %14s %14s %8s %18s\n" "machine" "non-ILP us" "ILP us" "gain"
    "recv miss ILP/non";
  List.iter
    (fun (l1d_kb, with_l2) ->
      let m = machine ~l1d_kb ~with_l2 in
      let non = run m Engine.Separate in
      let ilp = run m Engine.Ilp in
      let proc (r : Ft.result) = Ft.mean r.Ft.send_us +. Ft.mean r.Ft.recv_us in
      Printf.printf "%-10s %14.1f %14.1f %7.0f%% %8.1f%% / %.1f%%\n" m.Config.name
        (proc non) (proc ilp)
        (100.0 *. (1.0 -. (proc ilp /. proc non)))
        (100.0 *. Stats.data_miss_ratio ilp.Ft.recv_stats)
        (100.0 *. Stats.data_miss_ratio non.Ft.recv_stats))
    [ (4, false); (8, false); (16, false); (16, true); (64, true) ];
  print_endline
    "\nReadings: a small first-level cache hurts both styles; adding an L2\n\
     rescues the misses that ILP's byte-wise stores produce; with a large\n\
     cache the non-ILP intermediate buffers stay resident and the gap is\n\
     down to pure instruction savings — the paper's claim that ILP's\n\
     benefit is fewer memory ACCESSES, not better cache behaviour."
