(* Build your own integrated pipeline from the public API.

   This example steps outside the paper's fixed stack: it integrates DES
   encryption with a CRC-32 tap over raw buffers, chooses the exchange
   unit with Units.exchange_unit, re-chunks a byte stream with a word
   filter, and compares the fused loop against sequential passes — the
   same comparison the paper makes, on a stack the paper never built.

   Run with: dune exec examples/custom_pipeline.exe *)

open Ilp_memsim
module P = Ilp_core.Pipeline
module Dmf = Ilp_core.Dmf
module Units = Ilp_core.Units
module Wf = Ilp_core.Word_filter

let () =
  print_endline "custom pipeline: DES + CRC-32 tap on a simulated AXP 3000/800\n";
  let sim = Sim.create Config.axp3000_800 in
  let len = 4096 in
  let data = Ilp_app.Workload.generate ~len ~seed:42 in
  let src = Ilp_app.Workload.install sim data in
  let dst = Alloc.alloc sim.Sim.alloc ~align:64 len in

  (* Stage 1: a word-oriented marshalling step (4-byte units).
     Stage 2: DES (8-byte units).  The exchange unit is their LCM. *)
  let des = Ilp_cipher.Des.charged sim ~key:"examples" () in
  let stages = [ Dmf.marshalling sim (); Dmf.of_cipher_encrypt des ] in
  let le = Units.exchange_unit (List.map (fun d -> d.Dmf.unit_len) stages) in
  Printf.printf "exchange unit Le = LCM(4, 8) = %d bytes\n\n" le;

  (* A CRC-32 tap rides along in the fused loop, observing ciphertext. *)
  let crc = Ilp_checksum.Crc32.create sim.Sim.mem sim.Sim.alloc in
  let crc_acc = ref Ilp_checksum.Crc32.init in
  let tap block ~off ~len =
    crc_acc := Ilp_checksum.Crc32.update_block crc ~crc:!crc_acc block ~off ~len
  in

  let time name f =
    Sim.cold_start sim;
    f ();
    let us = Machine.micros sim.Sim.machine in
    Printf.printf "%-22s %8.1f us   (%.1f Mbit/s)\n" name us
      (float_of_int (len * 8) /. us);
    us
  in

  (* Conventional: one pass per manipulation, then a CRC pass. *)
  let sequential () =
    List.iteri
      (fun i stage ->
        let from = if i = 0 then src else dst in
        P.run_pass sim stage ~src:from ~dst ~len ())
      stages;
    crc_acc :=
      Ilp_checksum.Crc32.update_mem crc ~crc:Ilp_checksum.Crc32.init sim.Sim.mem
        ~pos:dst ~len
  in
  let t_seq = time "sequential passes" sequential in
  let crc_seq = Ilp_checksum.Crc32.finish !crc_acc in

  (* Integrated: one loop, CRC folded in. *)
  let fused () =
    crc_acc := Ilp_checksum.Crc32.init;
    let spec = P.spec ~tap ~tap_position:P.Tap_output stages in
    P.run_fused sim spec ~src ~dst ~len
  in
  let t_fused = time "fused ILP loop" fused in
  let crc_fused = Ilp_checksum.Crc32.finish !crc_acc in

  Printf.printf "\nCRC-32 sequential : %08x\n" crc_seq;
  Printf.printf "CRC-32 fused      : %08x   (identical: %b)\n" crc_fused
    (crc_seq = crc_fused);
  Printf.printf "fusion gain       : %.0f%%\n"
    (100.0 *. (1.0 -. (t_fused /. t_seq)));
  print_endline
    "\nNote how modest the gain is: DES is so ALU-heavy that eliminating\n\
     memory passes barely moves the needle — exactly why the paper had to\n\
     simplify its cipher (section 3.1, citing Gunningberg et al.).";

  (* Word filters: adapt an odd-sized record stream to the 8-byte units
     the cipher wants. *)
  print_endline "\nword filter: 5-byte records -> 8-byte cipher blocks";
  let emitted = Buffer.create 64 in
  let wf = Wf.create ~out_len:8 ~emit:(fun b off -> Buffer.add_subbytes emitted b off 8) in
  List.iter (fun r -> Wf.push_string wf r) [ "AAAAA"; "BBBBB"; "CCCCC" ];
  let pad = Wf.flush wf ~pad:'\000' in
  Printf.printf "pushed 3 x 5 bytes, emitted %d blocks, %d pad bytes\n"
    (Buffer.length emitted / 8) pad
